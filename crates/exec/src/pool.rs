//! Persistent worker pool for parallel partition execution.
//!
//! The spawn-per-operator parallel path creates a fresh scoped OS thread
//! for every partition of every operator invocation — dozens of spawns
//! *per iteration* of an iterative CTE. This module keeps a fixed set of
//! long-lived workers (one per configured partition) alive for the
//! lifetime of a `Database` and hands them per-partition closures
//! instead, so the steady-state loop body spawns zero threads.
//!
//! [`WorkerPool::scope`] mirrors `crossbeam::thread::scope` semantics:
//! it accepts non-`'static` closures, blocks until every submitted task
//! has finished, and reports each task's outcome as a
//! [`std::thread::Result`] so callers keep the exact panic-isolation
//! handling (`Err(payload)` on panic) they already use for spawned
//! threads. Cancellation and per-partition retry are unchanged: the
//! closures submitted by the operators run `run_partition`, which checks
//! the `QueryGuard` and drives the retry/backoff loop exactly as it does
//! on a spawned thread.
//!
//! Two multi-session robustness properties live here:
//!
//! * **Fairness.** Each `scope` call forms its own task *group*; workers
//!   pop one task from the front group then rotate it to the back, so
//!   concurrent statements round-robin the pool — a 50-iteration loop
//!   submitting 8 tasks per operator cannot starve a point query that
//!   arrived behind it.
//! * **Stall deadline.** If no task of a scope completes for the
//!   configured stall window, the scope reclaims its still-queued tasks
//!   (they never started, so dropping them is safe), finishes waiting
//!   for the ones already running, and surfaces a typed
//!   [`Error::PoolStalled`] instead of hanging the coordinator forever
//!   on a latch nobody will decrement.
//!
//! Lock poisoning never aborts the process: workers and scope recover
//! the guard with [`std::sync::PoisonError::into_inner`] (the protected
//! state is a plain deque plus counters, consistent at every await
//! point), and a scope whose *result slots* were poisoned degrades into
//! a typed [`Error::WorkerPanicked`] for that one query.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use spinner_common::{Error, Result};

/// A queued unit of work. Tasks are lifetime-erased to `'static`; the
/// safety argument lives in [`WorkerPool::scope`].
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Pending tasks grouped by submitting scope, drained round-robin.
struct FairQueue {
    /// One entry per scope with queued work: `(group id, its tasks)`.
    /// Workers pop from the front group, then rotate it to the back.
    groups: VecDeque<(u64, VecDeque<Task>)>,
    /// Set once on pool drop; guarded with the groups so a worker never
    /// misses a shutdown edge between checks.
    shutdown: bool,
}

impl FairQueue {
    /// Total queued tasks across all groups.
    fn len(&self) -> usize {
        self.groups.iter().map(|(_, t)| t.len()).sum()
    }

    /// Pop one task round-robin: take from the front group, rotate it to
    /// the back if it still has work, drop it if now empty.
    fn pop(&mut self) -> Option<Task> {
        while let Some((gid, mut tasks)) = self.groups.pop_front() {
            if let Some(task) = tasks.pop_front() {
                if !tasks.is_empty() {
                    self.groups.push_back((gid, tasks));
                }
                return Some(task);
            }
        }
        None
    }

    /// Remove (and drop) every still-queued task of `gid`, returning how
    /// many were reclaimed. Tasks already popped by a worker are running
    /// and unaffected.
    fn reclaim(&mut self, gid: u64) -> usize {
        let mut reclaimed = 0;
        self.groups.retain_mut(|(g, tasks)| {
            if *g == gid {
                reclaimed += tasks.len();
                false
            } else {
                true
            }
        });
        reclaimed
    }
}

/// Queue state shared between the pool handle and its workers.
struct Shared {
    queue: Mutex<FairQueue>,
    /// Signalled when tasks arrive or shutdown begins.
    available: Condvar,
}

impl Shared {
    /// Lock the queue, recovering from poison: every critical section
    /// over it only moves boxes between deques and flips flags, so the
    /// state is consistent even if a holder unwound.
    fn lock_queue(&self) -> MutexGuard<'_, FairQueue> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Per-`scope` completion state: result slots plus a countdown latch.
struct ScopeState<R> {
    /// `(slot per task, tasks still outstanding)` under one lock so the
    /// final decrement and the waiter's check cannot interleave badly.
    slots: Mutex<(Vec<Option<std::thread::Result<R>>>, usize)>,
    /// Signalled when a task of the scope finishes.
    done: Condvar,
    /// Set when the slots lock was ever poisoned: results may be torn,
    /// so the scope returns a typed error instead of trusting them.
    poisoned: AtomicBool,
}

impl<R> ScopeState<R> {
    fn lock_slots(&self) -> MutexGuard<'_, (Vec<Option<std::thread::Result<R>>>, usize)> {
        self.slots.lock().unwrap_or_else(|e| {
            self.poisoned.store(true, Ordering::Relaxed);
            e.into_inner()
        })
    }
}

/// A fixed-size pool of long-lived worker threads executing scoped tasks.
///
/// Created once per `Database` (from `EngineConfig::partitions`) and
/// shared by every statement; dropped (joining its workers) when the
/// database reconfigures or shuts down.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
    stall_timeout: Duration,
    next_group: AtomicU64,
}

impl WorkerPool {
    /// Spawn `threads` workers (at least one) that live until the pool is
    /// dropped, with the default 60 s scope stall deadline.
    pub fn new(threads: usize) -> Self {
        WorkerPool::with_stall_timeout(threads, 60_000)
    }

    /// Like [`WorkerPool::new`] with an explicit scope stall deadline in
    /// milliseconds (see `EngineConfig::pool_stall_timeout_ms`).
    pub fn with_stall_timeout(threads: usize, stall_ms: u64) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(FairQueue {
                groups: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("spinner-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            threads,
            stall_timeout: Duration::from_millis(stall_ms.max(1)),
            next_group: AtomicU64::new(0),
        }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Tasks currently queued (not yet picked up by a worker).
    pub fn queued_tasks(&self) -> usize {
        self.shared.lock_queue().len()
    }

    /// Run every closure in `tasks` on the pool, blocking until all have
    /// finished, and return their outcomes in submission order.
    ///
    /// A task that panics yields `Err(payload)` — the panic is caught on
    /// the worker (which survives and keeps serving tasks) and surfaced
    /// here exactly like a `crossbeam` handle join, so callers reuse
    /// their existing `WorkerPanicked` translation.
    ///
    /// The call itself fails with [`Error::PoolStalled`] if no task of
    /// this scope makes progress for the pool's stall deadline while some
    /// of its tasks are still queued (a lost-task bug or a wedged pool) —
    /// the queued tasks are reclaimed so the coordinator gets a typed
    /// error instead of waiting forever — and with
    /// [`Error::WorkerPanicked`] if the scope's result slots were
    /// poisoned, as the outcomes may be torn.
    pub fn scope<'env, R, F>(&self, tasks: Vec<F>) -> Result<Vec<std::thread::Result<R>>>
    where
        R: Send + 'env,
        F: FnOnce() -> R + Send + 'env,
    {
        let n = tasks.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let gid = self.next_group.fetch_add(1, Ordering::Relaxed);
        let state: Arc<ScopeState<R>> = Arc::new(ScopeState {
            slots: Mutex::new(((0..n).map(|_| None).collect(), n)),
            done: Condvar::new(),
            poisoned: AtomicBool::new(false),
        });
        {
            let mut group: VecDeque<Task> = VecDeque::with_capacity(n);
            for (i, task) in tasks.into_iter().enumerate() {
                let state = Arc::clone(&state);
                let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(task));
                    let mut slots = state.lock_slots();
                    slots.0[i] = Some(outcome);
                    slots.1 -= 1;
                    state.done.notify_all();
                });
                // SAFETY: the queue requires `'static` tasks but `wrapped`
                // borrows from `'env`. This function does not return until
                // every task enqueued here has either run to completion
                // (countdown latch) or been *reclaimed from the queue and
                // dropped* before ever running (stall path) — so no `'env`
                // borrow is ever used after `'env` ends. The transmute only
                // erases the lifetime; layout is identical. This is the
                // standard scoped-pool technique (`std::thread::scope` does
                // the morally equivalent erasure internally).
                let wrapped: Task = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(wrapped)
                };
                group.push_back(wrapped);
            }
            let mut queue = self.shared.lock_queue();
            queue.groups.push_back((gid, group));
            self.shared.available.notify_all();
        }
        let started = Instant::now();
        let mut last_progress = Instant::now();
        let mut reclaim_attempted = false;
        let mut reclaimed = 0usize;
        let mut slots = state.lock_slots();
        let mut last_remaining = slots.1;
        while slots.1 > 0 {
            if slots.1 < last_remaining {
                last_remaining = slots.1;
                last_progress = Instant::now();
            }
            if !reclaim_attempted && last_progress.elapsed() >= self.stall_timeout {
                // No completion for a full stall window. Pull back our
                // still-queued tasks (they never started; dropping them is
                // safe because `'env` is still alive right here), then keep
                // waiting for the running ones — returning while a worker
                // still holds an `'env` borrow would be unsound.
                reclaim_attempted = true;
                drop(slots);
                reclaimed = self.shared.lock_queue().reclaim(gid);
                slots = state.lock_slots();
                slots.1 -= reclaimed;
                last_remaining = last_remaining.saturating_sub(reclaimed);
                continue;
            }
            let wait = if reclaim_attempted {
                // Only running tasks remain; they decrement the latch when
                // they finish, so the timeout is just spurious-wakeup
                // hygiene.
                Duration::from_millis(50)
            } else {
                self.stall_timeout
                    .saturating_sub(last_progress.elapsed())
                    .max(Duration::from_millis(1))
            };
            let (guard, _) = state.done.wait_timeout(slots, wait).unwrap_or_else(|e| {
                state.poisoned.store(true, Ordering::Relaxed);
                e.into_inner()
            });
            slots = guard;
        }
        if reclaimed > 0 {
            return Err(Error::PoolStalled {
                waited_ms: started.elapsed().as_millis() as u64,
                pending_tasks: reclaimed as u64,
            });
        }
        if state.poisoned.load(Ordering::Relaxed) {
            return Err(Error::WorkerPanicked {
                partition: usize::MAX,
                message: "scope result slots poisoned; outcomes discarded".into(),
            });
        }
        Ok(slots
            .0
            .drain(..)
            .map(|r| r.expect("latch guarantees every slot is filled"))
            .collect())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.lock_queue();
            queue.shutdown = true;
            self.shared.available.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Worker body: pop and run tasks until shutdown. The pop loop drains any
/// remaining queued tasks before honouring shutdown so a racing `scope`
/// caller is never left waiting on a latch nobody will decrement. Lock
/// poisoning is recovered, never propagated — a worker must outlive any
/// panicking task.
fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(task) = queue.pop() {
                    break task;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        // Belt-and-braces: scope's wrapper already catches panics, but a
        // worker must never die (or poison anything) even if a future task
        // kind forgets to.
        let _ = catch_unwind(AssertUnwindSafe(task));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn scope_runs_all_tasks_and_preserves_order() {
        let pool = WorkerPool::new(4);
        let data = [1i64, 2, 3, 4, 5, 6, 7, 8];
        let tasks: Vec<_> = data.iter().map(|&x| move || x * 10).collect();
        let results: Vec<i64> = pool
            .scope(tasks)
            .unwrap()
            .into_iter()
            .map(|r| r.expect("no panic"))
            .collect();
        assert_eq!(results, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn tasks_run_on_pool_threads_not_the_caller() {
        let pool = WorkerPool::new(2);
        let names: Vec<String> = pool
            .scope(vec![
                || std::thread::current().name().unwrap_or("").to_string(),
                || std::thread::current().name().unwrap_or("").to_string(),
            ])
            .unwrap()
            .into_iter()
            .map(|r| r.expect("no panic"))
            .collect();
        for name in names {
            assert!(
                name.starts_with("spinner-worker-"),
                "task ran on {name:?}, not a pool worker"
            );
        }
    }

    #[test]
    fn panicking_task_is_isolated_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let outcomes = pool
            .scope(vec![
                Box::new(|| 1i64) as Box<dyn FnOnce() -> i64 + Send>,
                Box::new(|| panic!("boom")),
                Box::new(|| 3i64),
            ])
            .unwrap();
        assert!(outcomes[0].is_ok());
        assert!(outcomes[1].is_err());
        assert!(outcomes[2].is_ok());
        // The pool keeps working after a task panicked.
        let again = pool.scope(vec![|| 7i64]).unwrap();
        assert_eq!(*again[0].as_ref().expect("pool survived"), 7);
    }

    #[test]
    fn scope_borrows_caller_state() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..16)
            .map(|_| {
                let counter = &counter;
                move || counter.fetch_add(1, Ordering::SeqCst)
            })
            .collect();
        let results = pool.scope(tasks).unwrap();
        assert_eq!(results.len(), 16);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn empty_scope_is_a_no_op() {
        let pool = WorkerPool::new(1);
        let results: Vec<std::thread::Result<()>> = pool.scope(Vec::<fn()>::new()).unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn concurrent_scopes_from_multiple_threads_share_the_pool() {
        let pool = Arc::new(WorkerPool::new(4));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let tasks: Vec<_> = (0..8).map(|i| move || (t * 100 + i) as i64).collect();
                    pool.scope(tasks)
                        .unwrap()
                        .into_iter()
                        .map(|r| r.expect("no panic"))
                        .sum::<i64>()
                })
            })
            .collect();
        for (t, handle) in handles.into_iter().enumerate() {
            let expected: i64 = (0..8).map(|i| (t as i64) * 100 + i).sum();
            assert_eq!(handle.join().expect("scope thread"), expected);
        }
    }

    #[test]
    fn dispatch_round_robins_across_concurrent_scopes() {
        // One worker, two scopes: scope A is enqueued first with many
        // tasks, scope B second with one. With FIFO dispatch B would wait
        // for all of A; round-robin runs B's single task after at most
        // one A task.
        let pool = Arc::new(WorkerPool::new(1));
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let block_rx = Mutex::new(block_rx);
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let pool_a = Arc::clone(&pool);
        let order_a = Arc::clone(&order);
        let scope_a = std::thread::spawn(move || {
            let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            // First task parks the lone worker until released, guaranteeing
            // scope B enqueues while A still has queued tasks.
            tasks.push(Box::new(move || {
                started_tx.send(()).unwrap();
                let _ = block_rx.lock().unwrap().recv();
            }));
            for _ in 0..4 {
                let order = Arc::clone(&order_a);
                tasks.push(Box::new(move || order.lock().unwrap().push("A")));
            }
            pool_a.scope(tasks).unwrap();
        });
        // Only proceed once the lone worker is parked *inside* A's first
        // task — a queue-depth check alone can be satisfied by the five
        // not-yet-started tasks, letting the release below fire before B
        // ever enqueues.
        started_rx.recv().unwrap();
        let pool_b = Arc::clone(&pool);
        let order_b = Arc::clone(&order);
        let scope_b = std::thread::spawn(move || {
            let order = Arc::clone(&order_b);
            pool_b
                .scope(vec![
                    Box::new(move || order.lock().unwrap().push("B")) as Box<dyn FnOnce() + Send>
                ])
                .unwrap();
        });
        // Wait until B's task is queued too, then release the worker.
        while pool.queued_tasks() < 5 {
            std::thread::yield_now();
        }
        block_tx.send(()).unwrap();
        scope_a.join().unwrap();
        scope_b.join().unwrap();
        let order = order.lock().unwrap();
        let b_pos = order.iter().position(|&s| s == "B").expect("B ran");
        assert!(
            b_pos <= 1,
            "round-robin should run B after at most one A task, order: {order:?}"
        );
    }

    #[test]
    fn stalled_scope_reclaims_queued_tasks_with_typed_error() {
        // One worker parked on scope A; scope B's tasks can never start,
        // so B must stall out with PoolStalled instead of hanging.
        let pool = Arc::new(WorkerPool::with_stall_timeout(1, 100));
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let block_rx = Mutex::new(block_rx);
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let pool_a = Arc::clone(&pool);
        let scope_a = std::thread::spawn(move || {
            pool_a
                .scope(vec![Box::new(move || {
                    started_tx.send(()).unwrap();
                    let _ = block_rx.lock().unwrap().recv();
                }) as Box<dyn FnOnce() + Send>])
                .unwrap();
        });
        // Only proceed once the lone worker is parked inside A's task.
        started_rx.recv().unwrap();
        let err = pool
            .scope(vec![|| 1i64, || 2, || 3])
            .expect_err("starved scope must stall out");
        match err {
            Error::PoolStalled {
                waited_ms,
                pending_tasks,
            } => {
                assert!(waited_ms >= 100, "stalled after {waited_ms} ms");
                assert_eq!(pending_tasks, 3, "all three tasks were reclaimed");
            }
            other => panic!("expected PoolStalled, got {other:?}"),
        }
        block_tx.send(()).unwrap();
        scope_a.join().unwrap();
        // The pool is healthy again once the wedge clears.
        let again = pool.scope(vec![|| 7i64]).unwrap();
        assert_eq!(*again[0].as_ref().expect("pool recovered"), 7);
    }

    #[test]
    fn queue_poison_is_recovered_not_propagated() {
        let pool = WorkerPool::new(2);
        // Poison the queue mutex from a thread that panics while holding it.
        let res = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = pool.shared.queue.lock().unwrap();
                panic!("poison the pool queue");
            })
            .join()
        });
        assert!(res.is_err(), "the poisoning thread panicked");
        assert!(pool.shared.queue.is_poisoned());
        // The pool still schedules and completes work.
        let results = pool.scope(vec![|| 21i64, || 21]).unwrap();
        let total: i64 = results.into_iter().map(|r| r.unwrap()).sum();
        assert_eq!(total, 42);
    }
}
