//! Execution engine.
//!
//! The executor interprets the step program produced by `spinner-plan`
//! (after `spinner-optimizer` has rewritten it): each logical plan
//! fragment is lowered to a [`PhysicalPlan`] with
//! explicit [`Exchange`](physical::PhysicalPlan::Exchange) operators
//! between partition-incompatible stages, then evaluated partition by
//! partition. Two operators are unique to DBSpinner (paper §VI):
//!
//! * **rename** — [`TempRegistry::rename`](spinner_storage::TempRegistry):
//!   an O(1) pointer move in the intermediate-result lookup table, and
//! * **loop** — implemented by [`executor::Executor`]: a conditional jump that
//!   re-runs the loop body until the termination condition (metadata /
//!   data / delta) is satisfied.
//!
//! [`ExecStats`] counts rows crossing exchanges, rows materialized, rename
//! and merge operations, and loop iterations — the quantities behind the
//! paper's Figure 8 (data movement) measurements.

#![warn(missing_docs)]

pub mod aggregate;
pub mod cache;
pub mod executor;
pub mod fault;
pub mod operators;
pub mod physical;
pub mod pool;
pub mod stats;

pub use cache::JoinStateCache;
pub use executor::Executor;
pub use fault::FaultInjector;
pub use physical::{create_physical_plan, ExchangeMode, PhysicalPlan};
pub use pool::WorkerPool;
pub use stats::ExecStats;
