//! Loop-invariant join-state caching.
//!
//! Common-result extraction (optimizer, paper §V-A) materializes a
//! loop-invariant join subtree once before the loop — but the naive
//! executor still *re-hashes* that materialization on every iteration's
//! probe. "Spinning Fast Iterative Data Flows" (Ewen et al.) identifies
//! caching loop-invariant build-side state across iterations as the
//! dominant win for iterative dataflows; this module is that cache.
//!
//! A [`JoinStateCache`] lives for one statement. When a hash join's build
//! side is a hash repartition of a `__common_*` temp, the executor builds
//! the partitioned rows and per-partition hash tables once, stores them
//! here keyed by the temp's *physical identity* (the
//! `TempRegistry::fingerprint` of its partition buffers), and re-probes
//! the cached build on every later iteration.
//!
//! Lock poisoning degrades, never aborts: every accessor recovers the
//! guard with [`std::sync::PoisonError::into_inner`]. A cache torn by an
//! unwinding holder is harmless by construction — entries are validated
//! against the source temp's fingerprint on every lookup, so the worst
//! outcome of recovered-from-poison state is a spurious rebuild.
//!
//! The cached build is registered with the memory accountant as a
//! [`RegionKind::JoinBuild`] region — evictable derived state. Under
//! memory pressure the spill planner may pick it as a victim; eviction
//! simply drops the entry (the build is rebuildable from its source
//! temp), releasing its bytes. Invalidation is automatic: spilling and
//! rehydrating the backing temp, a recovery re-`put`, or any replacement
//! gives the temp new partition buffers, the fingerprint stops matching,
//! and the next probe rebuilds.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use spinner_common::memory::{RegionId, RegionKind};
use spinner_common::Value;
use spinner_storage::{Partitioned, SpillEnv, TempRegistry};

/// Per-partition build-side hash table: join key → row indices into the
/// co-indexed partition of [`CachedBuild::build`].
pub type JoinTable = HashMap<Vec<Value>, Vec<usize>>;

/// One cached loop-invariant build: the post-exchange partitioned rows
/// and the hash tables over them, plus the identity of the source temp
/// they were derived from.
pub struct CachedBuild {
    /// `TempRegistry::fingerprint` of the source temp at build time.
    fingerprint: Vec<usize>,
    /// Build-side rows, already hash-repartitioned on the join keys.
    pub build: Partitioned,
    /// One hash table per partition of `build`.
    pub tables: Vec<JoinTable>,
    /// Accountant region holding the build's bytes (None without a spill
    /// environment). Released on drop.
    region: Option<(RegionId, Arc<SpillEnv>)>,
}

impl CachedBuild {
    fn touch(&self) {
        if let Some((id, env)) = &self.region {
            env.accountant.touch(*id);
        }
    }
}

impl Drop for CachedBuild {
    fn drop(&mut self) {
        if let Some((id, env)) = self.region.take() {
            env.accountant.release(id);
        }
    }
}

impl std::fmt::Debug for CachedBuild {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedBuild")
            .field("partitions", &self.build.parts.len())
            .field("rows", &self.build.total_rows())
            .finish()
    }
}

/// Statement-scoped cache of loop-invariant hash-join builds, keyed by
/// the (lowercased) name of the hoisted `__common_*` temp they were built
/// from. See the module docs for the lifecycle.
#[derive(Debug, Default)]
pub struct JoinStateCache {
    entries: Mutex<HashMap<String, Arc<CachedBuild>>>,
}

impl JoinStateCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lock the entries map, recovering from poison (see the module docs:
    /// fingerprint validation makes a torn cache safe, so recovery only
    /// risks a spurious rebuild — far better than aborting the process).
    fn entries(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<CachedBuild>>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A still-valid cached build for `name`, or `None`. Validity means
    /// the source temp is resident with exactly the partition buffers the
    /// build was derived from; a stale entry is dropped (releasing its
    /// region) on the way out so the caller's rebuild replaces it.
    pub fn lookup(&self, name: &str, registry: &TempRegistry) -> Option<Arc<CachedBuild>> {
        let key = name.to_ascii_lowercase();
        let current = registry.fingerprint(name);
        let mut entries = self.entries();
        match entries.get(&key) {
            Some(entry) if current.as_deref() == Some(entry.fingerprint.as_slice()) => {
                entry.touch();
                Some(Arc::clone(entry))
            }
            Some(_) => {
                entries.remove(&key);
                None
            }
            None => None,
        }
    }

    /// Cache a freshly built `build` + `tables` for `name` and return it
    /// for immediate probing. The entry is registered with the accountant
    /// as an evictable [`RegionKind::JoinBuild`] region named
    /// `join_build:<name>`. If the source temp is not resident right now
    /// (it was spilled while we built), the build is returned for this
    /// probe but not cached — its identity is already unknowable.
    pub fn insert(
        &self,
        name: &str,
        build: Partitioned,
        tables: Vec<JoinTable>,
        registry: &TempRegistry,
    ) -> Arc<CachedBuild> {
        let key = name.to_ascii_lowercase();
        let Some(fingerprint) = registry.fingerprint(name) else {
            return Arc::new(CachedBuild {
                fingerprint: Vec::new(),
                build,
                tables,
                region: None,
            });
        };
        let region = registry.spill_env().map(|env| {
            let id = env.accountant.register(
                &format!("join_build:{key}"),
                RegionKind::JoinBuild,
                build.estimated_bytes(),
            );
            (id, env)
        });
        let entry = Arc::new(CachedBuild {
            fingerprint,
            build,
            tables,
            region,
        });
        self.entries().insert(key, Arc::clone(&entry));
        entry
    }

    /// Drop the cached build for `name` (accepts either the bare temp
    /// name or the accountant's `join_build:<name>` region name),
    /// releasing its region. Returns whether an entry existed. This is
    /// how the spill planner reclaims the cache's memory: the build is
    /// derived state, so eviction is a drop, not a disk write.
    pub fn evict(&self, name: &str) -> bool {
        let key = name
            .strip_prefix("join_build:")
            .unwrap_or(name)
            .to_ascii_lowercase();
        self.entries().remove(&key).is_some()
    }

    /// Drop every cached build, releasing their regions. Called when a
    /// statement finishes and when a loop rolls back to a checkpoint —
    /// replay must rebuild from the restored state, never reuse state
    /// derived on the failed timeline.
    pub fn clear(&self) {
        self.entries().clear();
    }

    /// Number of cached builds (tests/observability).
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A cached build never outlives its statement, and per-statement
/// coordination is single-threaded; `Send + Sync` lets the executor's
/// context (which holds a reference) cross scoped-worker boundaries.
const _: () = {
    fn assert_send_sync<T: Send + Sync>() {}
    #[allow(dead_code)]
    fn check() {
        assert_send_sync::<JoinStateCache>();
    }
};

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{Row, Schema};

    fn toy(parts: Vec<Vec<i64>>) -> Partitioned {
        Partitioned {
            schema: Arc::new(Schema::empty()),
            parts: parts
                .into_iter()
                .map(|p| {
                    Arc::new(
                        p.into_iter()
                            .map(|v| vec![Value::Int(v)].into_boxed_slice())
                            .collect::<Vec<Row>>(),
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn lookup_hits_while_source_identity_is_stable() {
        let registry = TempRegistry::new();
        registry.put("__common_1", toy(vec![vec![1], vec![2]]));
        let cache = JoinStateCache::new();
        assert!(cache.lookup("__common_1", &registry).is_none());
        cache.insert(
            "__common_1",
            toy(vec![vec![1], vec![2]]),
            vec![JoinTable::new(), JoinTable::new()],
            &registry,
        );
        assert!(cache.lookup("__common_1", &registry).is_some());
        assert!(
            cache.lookup("__COMMON_1", &registry).is_some(),
            "case-folded"
        );
    }

    #[test]
    fn replacing_the_source_invalidates() {
        let registry = TempRegistry::new();
        registry.put("__common_1", toy(vec![vec![1]]));
        let cache = JoinStateCache::new();
        cache.insert(
            "__common_1",
            toy(vec![vec![1]]),
            vec![JoinTable::new()],
            &registry,
        );
        registry.put("__common_1", toy(vec![vec![9]]));
        assert!(
            cache.lookup("__common_1", &registry).is_none(),
            "new buffers, new fingerprint"
        );
        assert!(cache.is_empty(), "stale entry dropped by lookup");
    }

    #[test]
    fn poisoned_cache_degrades_instead_of_aborting() {
        let registry = TempRegistry::new();
        registry.put("__common_1", toy(vec![vec![1]]));
        let cache = JoinStateCache::new();
        cache.insert(
            "__common_1",
            toy(vec![vec![1]]),
            vec![JoinTable::new()],
            &registry,
        );
        // Poison the entries mutex from a thread that panics holding it.
        let res = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = cache.entries.lock().unwrap();
                panic!("poison the join cache");
            })
            .join()
        });
        assert!(res.is_err(), "the poisoning thread panicked");
        assert!(cache.entries.is_poisoned());
        // Every accessor still works: the fingerprint check protects
        // correctness, so recovered state at worst rebuilds.
        assert!(cache.lookup("__common_1", &registry).is_some());
        assert_eq!(cache.len(), 1);
        registry.put("__common_2", toy(vec![vec![2]]));
        cache.insert(
            "__common_2",
            toy(vec![vec![2]]),
            vec![JoinTable::new()],
            &registry,
        );
        assert!(cache.evict("__common_2"));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn evict_accepts_region_names() {
        let registry = TempRegistry::new();
        registry.put("__common_2", toy(vec![vec![1]]));
        let cache = JoinStateCache::new();
        cache.insert(
            "__common_2",
            toy(vec![vec![1]]),
            vec![JoinTable::new()],
            &registry,
        );
        assert!(cache.evict("join_build:__common_2"));
        assert!(!cache.evict("join_build:__common_2"), "already gone");
        assert!(cache.lookup("__common_2", &registry).is_none());
    }
}
