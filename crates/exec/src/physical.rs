//! Physical plan and the logical → physical lowering.
//!
//! The lowering mirrors an MPP planner's shuffle decisions: hash joins and
//! grouped aggregations get hash exchanges on their keys, unkeyed joins
//! and global operations (sort, limit, global aggregate, set ops) gather
//! to one partition. Exchanges only *count* rows that actually change
//! partition, so a table already distributed on the join key moves nothing
//! — the same locality a real shared-nothing engine exploits.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use spinner_common::{DataType, EngineConfig, Error, Field, Result, Schema, SchemaRef, Value};
use spinner_plan::{AggExpr, JoinType, LogicalPlan, PlanExpr, SetOpKind, SortKey};

use crate::aggregate::Accumulator;

/// How an exchange redistributes rows.
#[derive(Debug, Clone, PartialEq)]
pub enum ExchangeMode {
    /// Re-partition by the hash of the listed key expressions.
    Hash(Vec<PlanExpr>),
    /// Collect every row into partition 0.
    Gather,
    /// Replicate every row to all partitions.
    Broadcast,
}

impl fmt::Display for ExchangeMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExchangeMode::Hash(keys) => {
                let k: Vec<String> = keys.iter().map(|e| e.to_string()).collect();
                write!(f, "Hash({})", k.join(", "))
            }
            ExchangeMode::Gather => f.write_str("Gather"),
            ExchangeMode::Broadcast => f.write_str("Broadcast"),
        }
    }
}

/// The executable operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Scan a base table from the catalog.
    SeqScan {
        /// Catalog table name.
        table: String,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Scan a named temp result (CTE working table) from the registry.
    TempScan {
        /// Temp-registry entry name.
        name: String,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Literal rows (`VALUES ...` / `SELECT <constants>`).
    Values {
        /// One expression list per row; evaluated against the empty row.
        rows: Vec<Vec<PlanExpr>>,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Per-row expression evaluation.
    Project {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// One expression per output column.
        exprs: Vec<PlanExpr>,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Keep rows satisfying the predicate.
    Filter {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Boolean filter expression.
        predicate: PlanExpr,
    },
    /// Hash join; both inputs are expected to be co-partitioned on the key
    /// expressions (the planner inserts exchanges).
    HashJoin {
        /// Probe side.
        left: Box<PhysicalPlan>,
        /// Build side.
        right: Box<PhysicalPlan>,
        /// Inner / left-outer / etc.
        join_type: JoinType,
        /// Key expressions over the left input.
        left_keys: Vec<PlanExpr>,
        /// Key expressions over the right input.
        right_keys: Vec<PlanExpr>,
        /// Non-equi condition evaluated on the combined row.
        residual: Option<PlanExpr>,
        /// Output schema (left columns then right columns).
        schema: SchemaRef,
    },
    /// Fallback join for non-equi / cross joins; inputs are gathered.
    NestedLoopJoin {
        /// Outer input.
        left: Box<PhysicalPlan>,
        /// Inner input.
        right: Box<PhysicalPlan>,
        /// Inner / left-outer / etc.
        join_type: JoinType,
        /// Join condition evaluated on the combined row.
        residual: Option<PlanExpr>,
        /// Output schema (left columns then right columns).
        schema: SchemaRef,
    },
    /// Grouped hash aggregation (input hash-exchanged on the group key) or
    /// global aggregation (partial per partition + final merge).
    HashAggregate {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Group-key expressions; empty for global aggregation.
        group: Vec<PlanExpr>,
        /// Aggregate functions to compute.
        aggs: Vec<AggExpr>,
        /// Output schema (group keys then aggregates).
        schema: SchemaRef,
    },
    /// Phase 1 of two-phase grouped aggregation: aggregate each partition
    /// locally, emitting `[group keys..., partial states...]` rows.
    AggregatePartial {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Group-key expressions.
        group: Vec<PlanExpr>,
        /// Aggregate functions to compute.
        aggs: Vec<AggExpr>,
        /// Intermediate schema (group keys then partial states).
        schema: SchemaRef,
    },
    /// Phase 2: merge partial-state rows (key-exchanged between phases)
    /// into final aggregate values.
    AggregateFinal {
        /// Input operator (an [`PhysicalPlan::AggregatePartial`] behind an
        /// exchange).
        input: Box<PhysicalPlan>,
        /// How many leading columns are group keys.
        group_len: usize,
        /// Aggregate functions being finalized.
        aggs: Vec<AggExpr>,
        /// Output schema (group keys then aggregates).
        schema: SchemaRef,
    },
    /// Remove duplicate rows (input hash-exchanged on the full row).
    Distinct {
        /// Input operator.
        input: Box<PhysicalPlan>,
    },
    /// Sort the gathered result.
    Sort {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// Keep the first `n` rows of the gathered result.
    Limit {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Row limit.
        n: u64,
    },
    /// UNION / INTERSECT / EXCEPT.
    SetOp {
        /// Which set operation.
        op: SetOpKind,
        /// `true` keeps duplicates (`ALL`).
        all: bool,
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Redistribute rows between partitions (simulated network shuffle).
    Exchange {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Hash / gather / broadcast.
        mode: ExchangeMode,
    },
}

impl PhysicalPlan {
    /// Output schema.
    pub fn schema(&self) -> SchemaRef {
        match self {
            PhysicalPlan::SeqScan { schema, .. }
            | PhysicalPlan::TempScan { schema, .. }
            | PhysicalPlan::Values { schema, .. }
            | PhysicalPlan::Project { schema, .. }
            | PhysicalPlan::HashJoin { schema, .. }
            | PhysicalPlan::NestedLoopJoin { schema, .. }
            | PhysicalPlan::HashAggregate { schema, .. }
            | PhysicalPlan::AggregatePartial { schema, .. }
            | PhysicalPlan::AggregateFinal { schema, .. }
            | PhysicalPlan::SetOp { schema, .. } => schema.clone(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Exchange { input, .. } => input.schema(),
        }
    }

    /// If this subtree is a hash repartition of a hoisted §V-A common
    /// result (`Exchange { Hash } → TempScan "__common_*"`), the temp's
    /// name. That is exactly the shape whose output never changes within
    /// a statement, so a hash join using it as the build side can build
    /// once and re-probe every iteration through the join-state cache.
    pub fn invariant_build_name(&self) -> Option<&str> {
        match self {
            PhysicalPlan::Exchange {
                input,
                mode: ExchangeMode::Hash(_),
            } => match input.as_ref() {
                PhysicalPlan::TempScan { name, .. } if name.starts_with("__common_") => {
                    Some(name.as_str())
                }
                _ => None,
            },
            _ => None,
        }
    }

    /// One-line operator label, shared by EXPLAIN output and the profile
    /// spans `EXPLAIN ANALYZE` collects.
    pub fn describe(&self) -> String {
        match self {
            PhysicalPlan::SeqScan { table, .. } => format!("SeqScan: {table}"),
            PhysicalPlan::TempScan { name, .. } => format!("TempScan: {name}"),
            PhysicalPlan::Values { rows, .. } => format!("Values: {} rows", rows.len()),
            PhysicalPlan::Project { exprs, .. } => format!(
                "Project: {}",
                exprs
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            PhysicalPlan::Filter { predicate, .. } => format!("Filter: {predicate}"),
            PhysicalPlan::HashJoin {
                join_type,
                left_keys,
                right_keys,
                ..
            } => format!(
                "HashJoin({join_type}): {}",
                left_keys
                    .iter()
                    .zip(right_keys)
                    .map(|(l, r)| format!("{l} = {r}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            PhysicalPlan::NestedLoopJoin { join_type, .. } => {
                format!("NestedLoopJoin({join_type})")
            }
            PhysicalPlan::HashAggregate { group, aggs, .. } => {
                format!("HashAggregate: groups={} aggs={}", group.len(), aggs.len())
            }
            PhysicalPlan::AggregatePartial { group, aggs, .. } => format!(
                "AggregatePartial: groups={} aggs={}",
                group.len(),
                aggs.len()
            ),
            PhysicalPlan::AggregateFinal {
                group_len, aggs, ..
            } => format!("AggregateFinal: groups={group_len} aggs={}", aggs.len()),
            PhysicalPlan::Distinct { .. } => "Distinct".into(),
            PhysicalPlan::Sort { keys, .. } => format!("Sort: {} keys", keys.len()),
            PhysicalPlan::Limit { n, .. } => format!("Limit: {n}"),
            PhysicalPlan::SetOp { op, all, .. } => {
                format!("{op}{}", if *all { " All" } else { "" })
            }
            PhysicalPlan::Exchange { mode, .. } => format!("Exchange: {mode}"),
        }
    }

    /// Indented physical EXPLAIN rendering.
    pub fn display_indent(&self, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        out.push_str(&pad);
        out.push_str(&self.describe());
        out.push('\n');
        for c in self.children() {
            c.display_indent(indent + 1, out);
        }
    }

    fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::SeqScan { .. }
            | PhysicalPlan::TempScan { .. }
            | PhysicalPlan::Values { .. } => vec![],
            PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Exchange { input, .. } => vec![input],
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::SetOp { left, right, .. } => vec![left, right],
            PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::AggregatePartial { input, .. }
            | PhysicalPlan::AggregateFinal { input, .. } => vec![input],
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.display_indent(0, &mut s);
        f.write_str(s.trim_end())
    }
}

/// Lower a logical plan to a physical one, inserting exchanges.
pub fn create_physical_plan(plan: &LogicalPlan, config: &EngineConfig) -> Result<PhysicalPlan> {
    Ok(match plan {
        LogicalPlan::TableScan { table, schema } => PhysicalPlan::SeqScan {
            table: table.clone(),
            schema: schema.clone(),
        },
        LogicalPlan::TempScan { name, schema } => PhysicalPlan::TempScan {
            name: name.clone(),
            schema: schema.clone(),
        },
        LogicalPlan::Values { schema, rows } => PhysicalPlan::Values {
            rows: rows.clone(),
            schema: schema.clone(),
        },
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => PhysicalPlan::Project {
            input: Box::new(create_physical_plan(input, config)?),
            exprs: exprs.clone(),
            schema: schema.clone(),
        },
        LogicalPlan::Filter { input, predicate } => PhysicalPlan::Filter {
            input: Box::new(create_physical_plan(input, config)?),
            predicate: predicate.clone(),
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            filter,
            schema,
        } => {
            let l = create_physical_plan(left, config)?;
            let r = create_physical_plan(right, config)?;
            if on.is_empty() {
                // Non-equi or cross join: gather both sides.
                PhysicalPlan::NestedLoopJoin {
                    left: Box::new(PhysicalPlan::Exchange {
                        input: Box::new(l),
                        mode: ExchangeMode::Gather,
                    }),
                    right: Box::new(PhysicalPlan::Exchange {
                        input: Box::new(r),
                        mode: ExchangeMode::Gather,
                    }),
                    join_type: *join_type,
                    residual: filter.clone(),
                    schema: schema.clone(),
                }
            } else {
                let left_keys: Vec<PlanExpr> = on.iter().map(|(l, _)| l.clone()).collect();
                let right_keys: Vec<PlanExpr> = on.iter().map(|(_, r)| r.clone()).collect();
                PhysicalPlan::HashJoin {
                    left: Box::new(PhysicalPlan::Exchange {
                        input: Box::new(l),
                        mode: ExchangeMode::Hash(left_keys.clone()),
                    }),
                    right: Box::new(PhysicalPlan::Exchange {
                        input: Box::new(r),
                        mode: ExchangeMode::Hash(right_keys.clone()),
                    }),
                    join_type: *join_type,
                    left_keys,
                    right_keys,
                    residual: filter.clone(),
                    schema: schema.clone(),
                }
            }
        }
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => {
            let child = create_physical_plan(input, config)?;
            if group.is_empty() {
                // Global aggregate: partial per partition, merged by the
                // operator itself — no exchange needed.
                PhysicalPlan::HashAggregate {
                    input: Box::new(child),
                    group: group.clone(),
                    aggs: aggs.clone(),
                    schema: schema.clone(),
                }
            } else if config.two_phase_aggregation && aggs.iter().all(|a| !a.distinct) {
                // Two-phase: local partial aggregation, exchange the (far
                // fewer) partial-state rows on the group key, final merge.
                let mut fields: Vec<Field> = schema.fields()[..group.len()].to_vec();
                for (i, a) in aggs.iter().enumerate() {
                    for j in 0..Accumulator::state_width(a.func) {
                        fields.push(Field::new(format!("__state_{i}_{j}"), DataType::Null));
                    }
                }
                let partial_schema = Arc::new(Schema::new(fields));
                let keys: Vec<PlanExpr> = (0..group.len())
                    .map(|i| PlanExpr::column(i, partial_schema.field(i).name.clone()))
                    .collect();
                PhysicalPlan::AggregateFinal {
                    input: Box::new(PhysicalPlan::Exchange {
                        input: Box::new(PhysicalPlan::AggregatePartial {
                            input: Box::new(child),
                            group: group.clone(),
                            aggs: aggs.clone(),
                            schema: partial_schema,
                        }),
                        mode: ExchangeMode::Hash(keys),
                    }),
                    group_len: group.len(),
                    aggs: aggs.clone(),
                    schema: schema.clone(),
                }
            } else {
                // Single-phase (DISTINCT aggregates need the raw rows).
                PhysicalPlan::HashAggregate {
                    input: Box::new(PhysicalPlan::Exchange {
                        input: Box::new(child),
                        mode: ExchangeMode::Hash(group.clone()),
                    }),
                    group: group.clone(),
                    aggs: aggs.clone(),
                    schema: schema.clone(),
                }
            }
        }
        LogicalPlan::Distinct { input } => {
            let schema = input.schema();
            let keys: Vec<PlanExpr> = schema
                .fields()
                .iter()
                .enumerate()
                .map(|(i, f)| PlanExpr::column(i, f.qualified_name()))
                .collect();
            PhysicalPlan::Distinct {
                input: Box::new(PhysicalPlan::Exchange {
                    input: Box::new(create_physical_plan(input, config)?),
                    mode: ExchangeMode::Hash(keys),
                }),
            }
        }
        LogicalPlan::Sort { input, keys } => PhysicalPlan::Sort {
            input: Box::new(PhysicalPlan::Exchange {
                input: Box::new(create_physical_plan(input, config)?),
                mode: ExchangeMode::Gather,
            }),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Exchange {
                input: Box::new(create_physical_plan(input, config)?),
                mode: ExchangeMode::Gather,
            }),
            n: *n,
        },
        LogicalPlan::SetOp {
            op,
            all,
            left,
            right,
            schema,
        } => {
            let l = create_physical_plan(left, config)?;
            let r = create_physical_plan(right, config)?;
            if *all && *op == SetOpKind::Union {
                // UNION ALL: no data movement needed — concatenate
                // partition-wise.
                PhysicalPlan::SetOp {
                    op: *op,
                    all: true,
                    left: Box::new(l),
                    right: Box::new(r),
                    schema: schema.clone(),
                }
            } else {
                // Distinct set ops co-partition both sides on all columns.
                let keys = |s: &SchemaRef| -> Vec<PlanExpr> {
                    s.fields()
                        .iter()
                        .enumerate()
                        .map(|(i, f)| PlanExpr::column(i, f.qualified_name()))
                        .collect()
                };
                let lk = keys(&l.schema());
                let rk = keys(&r.schema());
                PhysicalPlan::SetOp {
                    op: *op,
                    all: *all,
                    left: Box::new(PhysicalPlan::Exchange {
                        input: Box::new(l),
                        mode: ExchangeMode::Hash(lk),
                    }),
                    right: Box::new(PhysicalPlan::Exchange {
                        input: Box::new(r),
                        mode: ExchangeMode::Hash(rk),
                    }),
                    schema: schema.clone(),
                }
            }
        }
    })
}

/// Partition index for a composed key. Single NULLs and all-NULL keys land
/// in partition 0. Must agree with
/// [`spinner_storage::partition_of`] for one-column keys so tables already
/// distributed on a join key move no rows.
pub fn partition_for_key(values: &[Value], parts: usize) -> Result<usize> {
    if parts == 0 {
        return Err(Error::execution("partition count must be positive"));
    }
    match values {
        [] => Ok(0),
        [v] => {
            if v.is_null() {
                Ok(0)
            } else {
                Ok(spinner_storage::partition_of(v, parts))
            }
        }
        many => {
            let mut h = DefaultHasher::new();
            for v in many {
                v.hash(&mut h);
            }
            Ok((h.finish() % parts as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{DataType, Field, Schema};
    use std::sync::Arc;

    fn scan() -> LogicalPlan {
        LogicalPlan::TableScan {
            table: "t".into(),
            schema: Arc::new(Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
            ])),
        }
    }

    #[test]
    fn equi_join_gets_hash_exchanges() {
        let join = LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            join_type: JoinType::Inner,
            on: vec![(PlanExpr::column(0, "a"), PlanExpr::column(0, "a"))],
            filter: None,
            schema: Arc::new(scan().schema().join(&scan().schema())),
        };
        let phys = create_physical_plan(&join, &EngineConfig::default()).unwrap();
        let PhysicalPlan::HashJoin { left, right, .. } = phys else {
            panic!()
        };
        assert!(matches!(
            *left,
            PhysicalPlan::Exchange {
                mode: ExchangeMode::Hash(_),
                ..
            }
        ));
        assert!(matches!(
            *right,
            PhysicalPlan::Exchange {
                mode: ExchangeMode::Hash(_),
                ..
            }
        ));
    }

    #[test]
    fn cross_join_gathers() {
        let join = LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            join_type: JoinType::Cross,
            on: vec![],
            filter: None,
            schema: Arc::new(scan().schema().join(&scan().schema())),
        };
        let phys = create_physical_plan(&join, &EngineConfig::default()).unwrap();
        assert!(matches!(phys, PhysicalPlan::NestedLoopJoin { .. }));
    }

    #[test]
    fn grouped_aggregate_lowers_to_two_phases() {
        let agg = LogicalPlan::Aggregate {
            input: Box::new(scan()),
            group: vec![PlanExpr::column(0, "a")],
            aggs: vec![],
            schema: Arc::new(Schema::new(vec![Field::new("a", DataType::Int)])),
        };
        let phys = create_physical_plan(&agg, &EngineConfig::default()).unwrap();
        let PhysicalPlan::AggregateFinal { input, .. } = phys else {
            panic!("expected final phase on top")
        };
        let PhysicalPlan::Exchange {
            input,
            mode: ExchangeMode::Hash(_),
        } = *input
        else {
            panic!("expected key exchange between phases")
        };
        assert!(matches!(*input, PhysicalPlan::AggregatePartial { .. }));
    }

    #[test]
    fn distinct_aggregate_stays_single_phase() {
        let agg = LogicalPlan::Aggregate {
            input: Box::new(scan()),
            group: vec![PlanExpr::column(0, "a")],
            aggs: vec![spinner_plan::AggExpr {
                func: spinner_plan::AggFunc::Count,
                arg: Some(PlanExpr::column(1, "b")),
                by: None,
                distinct: true,
                name: "c".into(),
            }],
            schema: Arc::new(Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("c", DataType::Int),
            ])),
        };
        let phys = create_physical_plan(&agg, &EngineConfig::default()).unwrap();
        let PhysicalPlan::HashAggregate { input, .. } = phys else {
            panic!("DISTINCT must use the single-phase path")
        };
        assert!(matches!(
            *input,
            PhysicalPlan::Exchange {
                mode: ExchangeMode::Hash(_),
                ..
            }
        ));
    }

    #[test]
    fn two_phase_toggle_restores_single_phase() {
        let agg = LogicalPlan::Aggregate {
            input: Box::new(scan()),
            group: vec![PlanExpr::column(0, "a")],
            aggs: vec![],
            schema: Arc::new(Schema::new(vec![Field::new("a", DataType::Int)])),
        };
        let config = EngineConfig::default().with_two_phase_aggregation(false);
        let phys = create_physical_plan(&agg, &config).unwrap();
        assert!(matches!(phys, PhysicalPlan::HashAggregate { .. }));
    }

    #[test]
    fn global_aggregate_has_no_exchange() {
        let agg = LogicalPlan::Aggregate {
            input: Box::new(scan()),
            group: vec![],
            aggs: vec![],
            schema: Arc::new(Schema::empty()),
        };
        let phys = create_physical_plan(&agg, &EngineConfig::default()).unwrap();
        let PhysicalPlan::HashAggregate { input, .. } = phys else {
            panic!()
        };
        assert!(matches!(*input, PhysicalPlan::SeqScan { .. }));
    }

    #[test]
    fn single_key_partitioning_matches_storage() {
        let v = Value::Int(42);
        assert_eq!(
            partition_for_key(std::slice::from_ref(&v), 8).unwrap(),
            spinner_storage::partition_of(&v, 8)
        );
        assert_eq!(partition_for_key(&[Value::Null], 8).unwrap(), 0);
    }
}
