//! The step-program executor: materialize, rename, merge and **loop**.
//!
//! This is where DBSpinner's two new operators live at run time:
//!
//! * `rename` re-points an entry of the temp-result registry — no rows
//!   move (§VI-A);
//! * `loop` evaluates the termination condition after each iteration and
//!   jumps back to the top of the loop body while it holds (§VI-B). The
//!   three condition classes are implemented exactly as the paper
//!   describes: metadata (iteration / cumulative-update counters), data
//!   (`SELECT count(*) FROM cteTable WHERE expr` compared against N) and
//!   delta (rows changed versus the previous iteration, which requires
//!   keeping the previous snapshot).

use std::collections::HashMap;
use std::sync::Arc;

use spinner_common::memory::{RegionKind, SpillRequest};
use spinner_common::profile::{SpanKind, Tracer};
use spinner_common::{Batch, EngineConfig, Error, FaultSite, QueryGuard, Result, Row, Value};
use spinner_plan::{LogicalPlan, LoopKind, LoopStep, PlanExpr, QueryPlan, Step, TerminationPlan};
use spinner_storage::{Catalog, CheckpointStore, LoopCheckpoint, Partitioned, TempRegistry};

use crate::cache::JoinStateCache;
use crate::fault::FaultInjector;
use crate::operators::{self, OpContext};
use crate::physical::{create_physical_plan, ExchangeMode};
use crate::pool::WorkerPool;
use crate::stats::ExecStats;

/// Executes planned queries against a catalog + temp registry.
///
/// The `guard` is consulted at every step and loop-iteration boundary
/// (and inside operators at batch boundaries), so cancellation, deadline
/// and budget violations surface as typed errors between units of work —
/// never mid-mutation. The `faults` injector is a no-op unless the
/// config carries chaos-testing fault plans.
pub struct Executor<'a> {
    /// Base tables.
    pub catalog: &'a Catalog,
    /// Named temporary results (CTE working tables, merge outputs).
    pub registry: &'a TempRegistry,
    /// Optimization toggles and partition count.
    pub config: &'a EngineConfig,
    /// Flat per-statement counters (always on).
    pub stats: &'a ExecStats,
    /// Cancellation / deadline / budget enforcement.
    pub guard: &'a QueryGuard,
    /// Chaos-testing fault injector (no-op outside chaos tests).
    pub faults: &'a FaultInjector,
    /// Span collector for `EXPLAIN ANALYZE`; disabled for normal statements.
    pub tracer: &'a Tracer,
    /// Loop checkpoints for mid-loop recovery (unused unless the config
    /// enables checkpointing or recovery).
    pub checkpoints: &'a CheckpointStore,
    /// Persistent worker pool for parallel partitions (`None` = spawn a
    /// scoped thread per operator, the pre-pool behaviour).
    pub pool: Option<&'a WorkerPool>,
    /// Statement-scoped cache of loop-invariant hash-join builds.
    pub join_cache: &'a JoinStateCache,
}

/// Result of one step: the number of rows it reported as updated (merges
/// report this; other steps return `None`).
type StepOutcome = Option<u64>;

impl Executor<'_> {
    fn op_ctx(&self) -> OpContext<'_> {
        OpContext {
            catalog: self.catalog,
            registry: self.registry,
            config: self.config,
            stats: self.stats,
            guard: self.guard,
            faults: self.faults,
            tracer: self.tracer,
            pool: self.pool,
            join_cache: self.join_cache,
        }
    }

    /// Run a full query plan: steps first, then the final plan; gather the
    /// result into a single batch.
    pub fn run_query(&self, plan: &QueryPlan) -> Result<Batch> {
        self.run_steps(&plan.steps)?;
        self.tracer.enter(SpanKind::Return, "Return".to_string());
        // The final plan only reads (registry + catalog), so a transient
        // failure inside it can be re-run against unchanged inputs.
        let result = match self.with_transient_retry(|| self.execute_logical(&plan.root)) {
            Ok(r) => r,
            Err(e) => {
                self.tracer.exit(0, 0);
                return Err(e);
            }
        };
        self.tracer
            .exit(result.total_rows() as u64, result.estimated_bytes());
        let schema = plan.root.schema();
        Ok(Batch::new(schema, result.gather()))
    }

    /// Execute a logical plan tree to a partitioned result.
    pub fn execute_logical(&self, plan: &LogicalPlan) -> Result<Partitioned> {
        let physical = create_physical_plan(plan, self.config)?;
        operators::execute(&physical, &self.op_ctx())
    }

    /// Run a sequence of steps.
    pub fn run_steps(&self, steps: &[Step]) -> Result<()> {
        for step in steps {
            self.run_step(step)?;
        }
        Ok(())
    }

    /// Re-run `f` — an idempotent unit of work whose inputs are immutable
    /// snapshots — up to `max_partition_retries` times on a transient
    /// failure, with deterministic backoff. This is the step-granularity
    /// sibling of the per-partition retry inside the physical workers: a
    /// driver-side failure (exchange fault, materialize fault) re-runs the
    /// whole operator subtree against the same registry state.
    fn with_transient_retry<T>(&self, f: impl Fn() -> Result<T>) -> Result<T> {
        let attempts = self.config.max_partition_retries.saturating_add(1);
        let mut last_err: Option<Error> = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                if self.guard.is_cancelled() {
                    return Err(Error::Cancelled);
                }
                // The failed attempt may have aborted sibling workers;
                // that flag must not veto the re-run. External
                // cancellation stays sticky.
                self.guard.clear_worker_abort();
                self.guard.check()?;
                operators::backoff_sleep(self.config.retry_backoff_ms, attempt - 1);
                ExecStats::add(&self.stats.step_retries, 1);
                self.tracer.note_retry();
            }
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_err.expect("retry loop runs at least once"))
    }

    fn run_step(&self, step: &Step) -> Result<StepOutcome> {
        self.guard.check()?;
        if matches!(step, Step::Loop(_)) {
            // Loops own their failure handling (rollback + replay).
            return self.run_step_traced(step);
        }
        // Materialize re-puts its output, Merge consumes its working table
        // only after the fallible work, and Rename mutates nothing before
        // its fault site — so a failed non-loop step can safely be re-run
        // against its unchanged input snapshot.
        self.with_transient_retry(|| self.run_step_traced(step))
    }

    fn run_step_traced(&self, step: &Step) -> Result<StepOutcome> {
        if !self.tracer.is_enabled() {
            return self.run_step_inner(step);
        }
        let kind = match step {
            Step::Loop(_) => SpanKind::Loop,
            _ => SpanKind::Step,
        };
        self.tracer.enter(kind, step_label(step));
        let outcome = self.run_step_inner(step);
        match &outcome {
            Ok(_) => {
                let (rows, bytes) = self.step_output_size(step);
                self.tracer.exit(rows, bytes);
            }
            Err(_) => self.tracer.exit(0, 0),
        }
        outcome
    }

    /// Rows and bytes of the temp-registry entry a step produced, for the
    /// step's profile span. Traced statements only.
    fn step_output_size(&self, step: &Step) -> (u64, u64) {
        let name = match step {
            Step::Materialize { name, .. } => name,
            Step::Rename { to, .. } => to,
            Step::Merge { merged, .. } => merged,
            Step::Loop(l) => &l.cte,
        };
        match self.registry.get(name) {
            Ok(data) => (data.total_rows() as u64, data.estimated_bytes()),
            Err(_) => (0, 0),
        }
    }

    fn run_step_inner(&self, step: &Step) -> Result<StepOutcome> {
        match step {
            Step::Materialize {
                name,
                plan,
                distribute_by,
            } => {
                self.faults.hit(FaultSite::Materialize, self.stats)?;
                let mut data = self.execute_logical(plan)?;
                if let Some(col) = distribute_by {
                    // Store the result distributed on its key so later
                    // scans, merges and joins on that key are co-located.
                    data = operators::exchange(
                        data,
                        &ExchangeMode::Hash(vec![PlanExpr::column(*col, "dist_key")]),
                        &self.op_ctx(),
                    )?;
                }
                let total = data.total_rows() as u64;
                self.guard.charge_rows_materialized(total)?;
                let spilling = self.registry.spill_env().is_some();
                if !spilling {
                    // Fail-fast path (spilling off): the budget is a
                    // cumulative charge that trips before the result is
                    // even stored.
                    self.guard
                        .charge_intermediate_bytes(data.estimated_bytes())?;
                }
                ExecStats::add(&self.stats.rows_materialized, total);
                self.registry.put(name, data);
                if spilling {
                    self.relieve_memory_pressure(&[name])?;
                }
                Ok(None)
            }
            Step::Rename { from, to } => {
                self.faults.hit(FaultSite::Rename, self.stats)?;
                self.registry.rename(from, to)?;
                ExecStats::add(&self.stats.renames, 1);
                Ok(None)
            }
            Step::Merge {
                cte,
                working,
                merged,
                key,
                cte_display_name,
                delta_out,
            } => {
                let updated = self.merge_tables(
                    cte,
                    working,
                    merged,
                    *key,
                    cte_display_name,
                    delta_out.as_deref(),
                )?;
                Ok(Some(updated))
            }
            Step::Loop(l) => {
                self.run_loop(l)?;
                Ok(None)
            }
        }
    }

    /// Merge `working` into `cte` by key equality, producing `merged`.
    ///
    /// Both inputs are hash-exchanged on the key column so the per-
    /// partition merge sees all rows of one key together (MPP co-location).
    /// Returns the number of rows whose values actually changed. Errors on
    /// duplicate keys in the working table (paper §II).
    ///
    /// With `delta_out` set (semi-naive loops), the changed rows are also
    /// materialized under that temp name — partitioned exactly like the
    /// merged table, so the next iteration's delta scan is co-located with
    /// the CTE table. The delta falls out of the per-row comparison the
    /// merge already performs; no extra pass over the data is needed.
    fn merge_tables(
        &self,
        cte: &str,
        working: &str,
        merged: &str,
        key: usize,
        cte_display_name: &str,
        delta_out: Option<&str>,
    ) -> Result<u64> {
        let ctx = self.op_ctx();
        let key_expr = vec![PlanExpr::column(key, "merge_key")];
        let cte_data = operators::exchange(
            self.registry.get(cte)?,
            &ExchangeMode::Hash(key_expr.clone()),
            &ctx,
        )?;
        let work_data = operators::exchange(
            self.registry.get(working)?,
            &ExchangeMode::Hash(key_expr),
            &ctx,
        )?;
        let mut out_parts: Vec<Arc<Vec<Row>>> = Vec::with_capacity(cte_data.parts.len());
        let mut delta_parts: Vec<Vec<Row>> = Vec::with_capacity(cte_data.parts.len());
        let mut updated = 0u64;
        let mut examined = 0u64;
        for (cte_part, work_part) in cte_data.parts.iter().zip(&work_data.parts) {
            let mut index: HashMap<&Value, &Row> = HashMap::with_capacity(work_part.len());
            for row in work_part.iter() {
                let k = &row[key];
                if k.is_null() {
                    // NULL keys can never match an existing row; skip them
                    // like SQL equality would.
                    continue;
                }
                if index.insert(k, row).is_some() {
                    return Err(Error::DuplicateIterationKey {
                        cte: cte_display_name.to_owned(),
                        key: k.to_string(),
                    });
                }
            }
            let mut merged_rows: Vec<Row> = Vec::with_capacity(cte_part.len());
            let mut delta_rows: Vec<Row> = Vec::new();
            for old in cte_part.iter() {
                examined += 1;
                match index.get(&old[key]) {
                    Some(new) => {
                        if *new != old {
                            updated += 1;
                            if delta_out.is_some() {
                                delta_rows.push((*new).clone());
                            }
                        }
                        merged_rows.push((*new).clone());
                    }
                    None => merged_rows.push(old.clone()),
                }
            }
            out_parts.push(Arc::new(merged_rows));
            delta_parts.push(delta_rows);
        }
        ExecStats::add(&self.stats.merges, 1);
        ExecStats::add(&self.stats.merge_rows_examined, examined);
        ExecStats::add(&self.stats.rows_updated, updated);
        if let Some(d) = delta_out {
            ExecStats::add(&self.stats.delta_rows_emitted, updated);
            self.registry.put(
                d,
                Partitioned {
                    schema: Arc::clone(&cte_data.schema),
                    parts: delta_parts.into_iter().map(Arc::new).collect(),
                },
            );
        }
        self.registry.put(
            merged,
            Partitioned {
                schema: cte_data.schema,
                parts: out_parts,
            },
        );
        // Algorithm 1, line 10: the working table is consumed by the merge.
        self.registry.remove(working);
        match delta_out {
            Some(d) => self.relieve_memory_pressure(&[merged, d])?,
            None => self.relieve_memory_pressure(&[merged])?,
        }
        Ok(updated)
    }

    /// With a spill environment installed, bring tracked intermediate
    /// state back under the spill threshold by spilling victims — coldest
    /// loop-invariant state (common-result tables, old checkpoints) first,
    /// then non-current working tables; regions named in `protect` (the
    /// state the caller just wrote and is about to read) are never picked.
    /// The guard's intermediate-bytes budget is then enforced against what
    /// is still *resident*: `ResourceExhausted` fires only when spilling
    /// could not get below the budget, and a failed disk write surfaces as
    /// the typed, transient [`Error::SpillUnavailable`]. Without a spill
    /// environment this is a no-op (the fail-fast cumulative charge in the
    /// caller already ran).
    fn relieve_memory_pressure(&self, protect: &[&str]) -> Result<()> {
        let Some(env) = self.registry.spill_env() else {
            return Ok(());
        };
        if env.accountant.over_threshold() {
            for victim in env.accountant.spill_plan(protect) {
                self.spill_victim(&victim)?;
            }
        }
        if let Some(limit) = self.guard.intermediate_bytes_limit() {
            let resident = env.accountant.resident_bytes();
            if resident > limit {
                return Err(Error::ResourceExhausted {
                    resource: "intermediate_bytes".to_string(),
                    used: resident,
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Dispatch one spill-plan victim to the store that owns it. A victim
    /// that disappeared or was spilled concurrently is a benign no-op.
    fn spill_victim(&self, victim: &SpillRequest) -> Result<()> {
        match victim.kind {
            RegionKind::Checkpoint => {
                let loop_id = victim
                    .name
                    .strip_prefix("checkpoint:")
                    .unwrap_or(&victim.name);
                self.checkpoints.spill_entry(loop_id)?;
            }
            // A cached join build is derived state: reclaiming it is a
            // drop (the entry releases its region), not a disk write —
            // the next probe rebuilds from the source temp.
            RegionKind::JoinBuild => {
                self.join_cache.evict(&victim.name);
            }
            _ => {
                self.registry.spill_entry(&victim.name)?;
            }
        }
        Ok(())
    }

    /// The `loop` operator.
    fn run_loop(&self, l: &LoopStep) -> Result<()> {
        match &l.kind {
            LoopKind::Iterative { merge, delta, .. } => {
                self.run_iterative_loop(l, *merge, delta.as_deref())
            }
            LoopKind::FixedPoint { working, union_all } => {
                self.run_fixed_point_loop(l, working, *union_all)
            }
        }
    }

    fn run_iterative_loop(&self, l: &LoopStep, merge: bool, delta: Option<&str>) -> Result<()> {
        let needs_delta = matches!(l.termination, TerminationPlan::Delta { .. });
        let ckpt_every = self.config.checkpoint_interval;
        let mut tables = vec![l.cte.clone()];
        if let Some(d) = delta {
            // Semi-naive: before iteration 1 every row counts as "changed",
            // so the delta starts as the full initial table (an Arc bump,
            // not a copy). The merge step refills it each round with only
            // the rows whose values actually changed. The delta is part of
            // the loop's recovery state: a rollback must restore the delta
            // the checkpointed iteration would have fed forward.
            self.registry.put(d, self.registry.get(&l.cte)?);
            tables.push(d.to_string());
            ExecStats::add(&self.stats.semi_naive_loops, 1);
        }
        let mut iteration: u64 = 0;
        let mut cumulative_updates: u64 = 0;
        let mut recoveries_used: u64 = 0;
        if let Some((it, cum)) = self.seed_from_resume(l) {
            // Adopted from a dead engine's journal: the loop continues
            // from the rehydrated checkpoint instead of iteration 0.
            iteration = it;
            cumulative_updates = cum;
        } else if ckpt_every > 0 || self.config.max_loop_recoveries > 0 {
            // Entry checkpoint (iteration 0): a rollback always has a
            // target even when periodic checkpoints are off.
            self.save_checkpoint_recovering(l, &tables, 0, 0, &mut recoveries_used)?;
        }
        loop {
            iteration += 1;
            self.guard.check()?;
            if iteration > self.config.max_iterations {
                return Err(Error::IterationLimitExceeded {
                    cte: l.cte_display_name.clone(),
                    limit: self.config.max_iterations,
                });
            }
            let outcome = self
                .run_iterative_iteration(
                    l,
                    merge,
                    needs_delta,
                    delta,
                    iteration,
                    cumulative_updates,
                )
                .and_then(|(stop, updated)| {
                    // The periodic checkpoint is part of the attempt: a
                    // failure while snapshotting rolls back like any other
                    // mid-loop failure.
                    if !stop && ckpt_every > 0 && iteration.is_multiple_of(ckpt_every) {
                        self.save_checkpoint(l, &tables, iteration, updated)?;
                    }
                    Ok((stop, updated))
                });
            match outcome {
                Ok((stop, updated)) => {
                    cumulative_updates = updated;
                    if stop {
                        if let Some(d) = delta {
                            self.registry.remove(d);
                        }
                        self.checkpoints.remove(&l.cte);
                        return Ok(());
                    }
                }
                Err(err) => {
                    let ckpt = self.recover_loop(l, iteration, err, &mut recoveries_used)?;
                    iteration = ckpt.iteration;
                    cumulative_updates = ckpt.cumulative_updates;
                }
            }
        }
    }

    /// One iteration of an iterative (`WITH ITERATIVE`) loop body plus its
    /// termination check. Returns `(stop, new_cumulative_updates)`.
    fn run_iterative_iteration(
        &self,
        l: &LoopStep,
        merge: bool,
        needs_delta: bool,
        delta: Option<&str>,
        iteration: u64,
        cumulative_updates: u64,
    ) -> Result<(bool, u64)> {
        self.faults.hit(FaultSite::LoopIteration, self.stats)?;
        self.tracer.begin_iteration();
        let mut delta_fed: u64 = 0;
        if let Some(d) = delta {
            // The body's join consumes the delta table this round; record
            // how many rows it was fed so `repro convergence` can show
            // per-iteration cost tracking delta size.
            if let Ok(dt) = self.registry.get(d) {
                delta_fed = dt.total_rows() as u64;
                ExecStats::add(&self.stats.delta_rows_fed, delta_fed);
            }
        }
        // Delta termination on the rename path has no merge to count
        // changes, so keep the previous version for a diff (§VI-B:
        // "for this case, we also keep data from the previous
        // iteration"). Semi-naive loops never take this path: their
        // merge maintains the changed-row set, so termination checking
        // is O(delta) instead of a full-table diff.
        let previous = if needs_delta && !merge {
            Some(self.registry.get(&l.cte)?)
        } else {
            None
        };
        let mut merge_updates: Option<u64> = None;
        for step in &l.body {
            if let Some(u) = self.run_step(step)? {
                merge_updates = Some(u);
            }
        }
        ExecStats::add(&self.stats.iterations, 1);
        let current = self.registry.get(&l.cte)?;
        let changed_this_iter = match (merge_updates, &previous) {
            (Some(u), _) => u,
            (None, Some(prev)) => diff_by_key(prev, &current, l.key)?,
            // Rename path without delta tracking: the whole dataset is
            // replaced, every row counts as updated.
            (None, None) => {
                let n = current.total_rows() as u64;
                ExecStats::add(&self.stats.rows_updated, n);
                n
            }
        };
        let cumulative = cumulative_updates + changed_this_iter;
        self.tracer.note_iteration_mode(
            delta.is_some(),
            delta_fed,
            if delta.is_some() {
                changed_this_iter
            } else {
                0
            },
        );
        if self.tracer.is_enabled() {
            self.tracer.end_iteration(
                changed_this_iter,
                changed_this_iter,
                current.total_rows() as u64,
            );
        }
        let stop = match &l.termination {
            TerminationPlan::Iterations(n) => iteration >= *n,
            TerminationPlan::Updates(n) => cumulative >= *n,
            TerminationPlan::Data { predicate, rows } => {
                count_matching(&current, predicate)? >= *rows
            }
            TerminationPlan::Delta { threshold } => changed_this_iter < *threshold,
        };
        Ok((stop, cumulative))
    }

    /// Snapshot `tables` plus the loop counters as the latest checkpoint
    /// for this loop. Snapshots are O(partitions) `Arc` bumps, not row
    /// copies. The chaos `Checkpoint` fault site fires after the snapshot
    /// is assembled but before it is installed, so a killed checkpoint
    /// never corrupts the live loop state or the previous snapshot.
    fn save_checkpoint(
        &self,
        l: &LoopStep,
        tables: &[String],
        iteration: u64,
        cumulative_updates: u64,
    ) -> Result<()> {
        let mut snap = Vec::with_capacity(tables.len());
        for name in tables {
            snap.push((name.clone(), self.registry.get(name)?));
        }
        let ckpt = LoopCheckpoint {
            iteration,
            cumulative_updates,
            tables: snap,
        };
        let bytes = ckpt.estimated_bytes();
        self.faults.hit(FaultSite::Checkpoint, self.stats)?;
        if self.registry.spill_env().is_none() {
            // Snapshots hold real memory until replaced: debit the same
            // budget materialized results are charged against. (They were
            // previously counted in stats but never charged, letting a
            // checkpointed loop exceed `max_intermediate_bytes` unseen.)
            self.guard.charge_intermediate_bytes(bytes)?;
        }
        self.checkpoints.save(&l.cte, ckpt);
        ExecStats::add(&self.stats.checkpoints_taken, 1);
        ExecStats::add(&self.stats.checkpoint_bytes, bytes);
        self.tracer.note_checkpoint(bytes);
        self.relieve_memory_pressure(&[&l.cte])?;
        Ok(())
    }

    /// Consume a [`ResumeSeed`] primed for this loop by the engine's
    /// restart-adoption pass (none in normal execution). Installs the
    /// adopted checkpoint's tables — the iterative CTE plus its delta —
    /// into the registry, overwriting the freshly-seeded iteration-0
    /// state, records the restart counters, and re-saves the checkpoint
    /// so the resumed loop has a rollback target (and, when journaling,
    /// a durable epoch owned by the new pid). Returns the seeded
    /// `(iteration, cumulative_updates)` to continue from.
    fn seed_from_resume(&self, l: &LoopStep) -> Option<(u64, u64)> {
        let seed = self.checkpoints.take_resume(&l.cte)?;
        for (name, data) in &seed.checkpoint.tables {
            self.registry.put(name, data.clone());
        }
        ExecStats::add(&self.stats.restart_adopted_epoch, seed.adopted_epoch);
        ExecStats::add(
            &self.stats.restart_resumed_iteration,
            seed.checkpoint.iteration,
        );
        ExecStats::add(
            &self.stats.restart_replayed_iterations,
            seed.journal_iteration
                .saturating_sub(seed.checkpoint.iteration),
        );
        let at = (
            seed.checkpoint.iteration,
            seed.checkpoint.cumulative_updates,
        );
        self.checkpoints.save(&l.cte, seed.checkpoint);
        ExecStats::add(&self.stats.checkpoints_taken, 1);
        Some(at)
    }

    /// [`Self::save_checkpoint`] for the loop-entry snapshot, where no
    /// iteration has run yet: a transient failure here mutates nothing, so
    /// it is retried in place, consuming loop-recovery attempts.
    fn save_checkpoint_recovering(
        &self,
        l: &LoopStep,
        tables: &[String],
        iteration: u64,
        cumulative_updates: u64,
        recoveries_used: &mut u64,
    ) -> Result<()> {
        loop {
            match self.save_checkpoint(l, tables, iteration, cumulative_updates) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_retryable() && self.config.max_loop_recoveries > 0 => {
                    if *recoveries_used >= self.config.max_loop_recoveries {
                        return Err(Error::RecoveryExhausted {
                            cte: l.cte_display_name.clone(),
                            recoveries: *recoveries_used,
                            source: Box::new(e),
                        });
                    }
                    *recoveries_used += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Roll a loop back to its last checkpoint after `err` escaped the
    /// in-place retries at iteration `failed_iteration`. Restores the
    /// checkpointed tables into the registry and returns the checkpoint so
    /// the caller can reset its counters; the loop then replays from
    /// `checkpoint.iteration + 1`. A fault fired *during* the restore
    /// consumes another recovery attempt and tries again.
    fn recover_loop(
        &self,
        l: &LoopStep,
        failed_iteration: u64,
        mut err: Error,
        recoveries_used: &mut u64,
    ) -> Result<LoopCheckpoint> {
        loop {
            if !err.is_retryable() || self.config.max_loop_recoveries == 0 {
                return Err(err);
            }
            if self.guard.is_cancelled() {
                return Err(Error::Cancelled);
            }
            if *recoveries_used >= self.config.max_loop_recoveries {
                return Err(Error::RecoveryExhausted {
                    cte: l.cte_display_name.clone(),
                    recoveries: *recoveries_used,
                    source: Box::new(err),
                });
            }
            *recoveries_used += 1;
            // Discard the failed iteration's partial spans before replaying
            // so the profile's per-iteration story stays coherent.
            self.tracer.abort_iteration();
            match self.restore_checkpoint(l, failed_iteration) {
                Ok(ckpt) => {
                    // The failed attempt aborted sibling workers; clear the
                    // flag so replayed iterations are not stillborn.
                    // External cancellation stays sticky.
                    self.guard.clear_worker_abort();
                    return Ok(ckpt);
                }
                Err(e) => err = e,
            }
        }
    }

    /// Re-install the latest checkpoint's tables into the registry. The
    /// chaos `Recovery` fault site fires before any table is restored, so
    /// a killed restore is all-or-nothing with respect to the registry.
    fn restore_checkpoint(&self, l: &LoopStep, failed_iteration: u64) -> Result<LoopCheckpoint> {
        // `latest` rehydrates a spilled snapshot; a failed read surfaces
        // as a transient error the caller retries (consuming a recovery
        // attempt), never as a silent "no checkpoint".
        let ckpt = self.checkpoints.latest(&l.cte)?.ok_or_else(|| {
            Error::execution(format!(
                "no checkpoint to roll back to for iterative CTE '{}'",
                l.cte_display_name
            ))
        })?;
        self.faults.hit(FaultSite::Recovery, self.stats)?;
        for (name, data) in &ckpt.tables {
            self.registry.put(name, data.clone());
        }
        // Replay must rebuild from the restored state: drop any cached
        // join builds derived on the failed timeline. (Restoring re-`put`s
        // tables, so their fingerprints change anyway; clearing makes the
        // invalidation unconditional rather than incidental.)
        self.join_cache.clear();
        ExecStats::add(&self.stats.loop_rollbacks, 1);
        ExecStats::add(
            &self.stats.iterations_replayed,
            failed_iteration - ckpt.iteration,
        );
        self.tracer
            .note_rollback(ckpt.iteration + 1, failed_iteration);
        Ok(ckpt)
    }

    fn run_fixed_point_loop(&self, l: &LoopStep, working: &str, union_all: bool) -> Result<()> {
        let delta_name = format!("__delta_{}", l.cte);
        let ckpt_every = self.config.checkpoint_interval;
        let tables = [l.cte.clone(), delta_name.clone()];
        // Round zero: the delta is the base result.
        let base = self.registry.get(&l.cte)?;
        self.registry.put(&delta_name, base.clone());
        // For UNION (distinct) recursion, track everything seen so far.
        let mut seen = build_seen(union_all, &base);
        drop(base);
        let mut iteration: u64 = 0;
        let mut recoveries_used: u64 = 0;
        if let Some((it, _)) = self.seed_from_resume(l) {
            iteration = it;
            // The dedup set is derivable state: rebuild it from the
            // adopted CTE table, exactly as mid-loop recovery does.
            let restored = self.registry.get(&l.cte)?;
            seen = build_seen(union_all, &restored);
        } else if ckpt_every > 0 || self.config.max_loop_recoveries > 0 {
            // Accumulated CTE + current delta at an iteration boundary is
            // the complete recovery state of a fixed-point recursion (the
            // dedup set is derivable from the CTE table).
            self.save_checkpoint_recovering(l, &tables, 0, 0, &mut recoveries_used)?;
        }
        loop {
            iteration += 1;
            self.guard.check()?;
            if iteration > self.config.max_iterations {
                return Err(Error::IterationLimitExceeded {
                    cte: l.cte_display_name.clone(),
                    limit: self.config.max_iterations,
                });
            }
            let outcome = self
                .run_fixed_point_iteration(l, working, &delta_name, &mut seen)
                .and_then(|done| {
                    if !done && ckpt_every > 0 && iteration.is_multiple_of(ckpt_every) {
                        self.save_checkpoint(l, &tables, iteration, 0)?;
                    }
                    Ok(done)
                });
            match outcome {
                Ok(true) => break,
                Ok(false) => {}
                Err(err) => {
                    let ckpt = self.recover_loop(l, iteration, err, &mut recoveries_used)?;
                    iteration = ckpt.iteration;
                    // Rebuild the dedup set from the restored CTE table:
                    // `seen` is exactly the rows accumulated so far.
                    let restored = self.registry.get(&l.cte)?;
                    seen = build_seen(union_all, &restored);
                }
            }
        }
        self.registry.remove(&delta_name);
        self.checkpoints.remove(&l.cte);
        Ok(())
    }

    /// One round of a fixed-point (recursive CTE) loop: run the body over
    /// the current delta, filter to genuinely new rows, append them to the
    /// accumulated table and publish them as the next delta. Returns
    /// `Ok(true)` when the fixed point is reached (no new rows).
    ///
    /// The CTE and delta tables are only mutated at the very end, after
    /// every fallible operation, so a failed round leaves the loop state
    /// exactly as the last checkpoint (or entry) recorded it.
    fn run_fixed_point_iteration(
        &self,
        l: &LoopStep,
        working: &str,
        delta_name: &str,
        seen: &mut Option<std::collections::HashSet<Row>>,
    ) -> Result<bool> {
        self.faults.hit(FaultSite::LoopIteration, self.stats)?;
        self.tracer.begin_iteration();
        for step in &l.body {
            self.run_step(step)?;
        }
        ExecStats::add(&self.stats.iterations, 1);
        let produced = self.registry.get(working)?;
        // Filter to genuinely new rows.
        let mut new_parts: Vec<Vec<Row>> = (0..produced.parts.len()).map(|_| Vec::new()).collect();
        let mut added = 0usize;
        for (i, part) in produced.parts.iter().enumerate() {
            for row in part.iter() {
                let is_new = match seen {
                    Some(set) => set.insert(row.clone()),
                    None => true,
                };
                if is_new {
                    added += 1;
                    new_parts[i].push(row.clone());
                }
            }
        }
        self.registry.remove(working);
        if self.tracer.is_enabled() {
            let working_rows = self
                .registry
                .get(&l.cte)
                .map(|d| d.total_rows() as u64)
                .unwrap_or(0)
                + added as u64;
            self.tracer.end_iteration(added as u64, 0, working_rows);
        }
        if added == 0 {
            return Ok(true);
        }
        // Append the new rows to the accumulated CTE table and expose
        // them as the next round's delta.
        let current = self.registry.get(&l.cte)?;
        let mut appended: Vec<Arc<Vec<Row>>> = Vec::with_capacity(current.parts.len());
        for (part, extra) in current.parts.iter().zip(&new_parts) {
            if extra.is_empty() {
                appended.push(Arc::clone(part));
            } else {
                let mut rows = (**part).clone();
                rows.extend(extra.iter().cloned());
                appended.push(Arc::new(rows));
            }
        }
        self.registry.put(
            &l.cte,
            Partitioned {
                schema: current.schema.clone(),
                parts: appended,
            },
        );
        self.registry.put(
            delta_name,
            Partitioned {
                schema: current.schema,
                parts: new_parts.into_iter().map(Arc::new).collect(),
            },
        );
        self.relieve_memory_pressure(&[&l.cte, delta_name])?;
        Ok(false)
    }
}

/// Profile-span label for a step, mirroring its EXPLAIN rendering.
fn step_label(step: &Step) -> String {
    match step {
        Step::Materialize { name, .. } => format!("Materialize {name}"),
        Step::Rename { from, to } => format!("Rename {from} to {to}"),
        Step::Merge {
            cte, working, key, ..
        } => format!("Merge {working} into {cte} by key column #{key}"),
        Step::Loop(l) => format!(
            "Initialize loop operator {} for {}",
            l.termination, l.cte_display_name
        ),
    }
}

/// Count rows satisfying `predicate` (the data termination condition —
/// equivalent to `SELECT count(*) FROM cteTable WHERE expr`).
fn count_matching(data: &Partitioned, predicate: &PlanExpr) -> Result<u64> {
    let mut n = 0u64;
    for part in &data.parts {
        for row in part.iter() {
            if predicate.matches(row)? {
                n += 1;
            }
        }
    }
    Ok(n)
}

/// The dedup set of a UNION (distinct) recursion: every row accumulated in
/// the CTE table so far. Derivable state — mid-loop recovery rebuilds it
/// from the restored CTE table instead of checkpointing it.
fn build_seen(union_all: bool, data: &Partitioned) -> Option<std::collections::HashSet<Row>> {
    if union_all {
        return None;
    }
    let mut set = std::collections::HashSet::new();
    for part in &data.parts {
        for row in part.iter() {
            set.insert(row.clone());
        }
    }
    Some(set)
}

/// Number of rows in `current` that differ from the row with the same key
/// in `previous` (new keys count as changed). This is the delta diff the
/// rename path performs only when the termination condition requires it.
fn diff_by_key(previous: &Partitioned, current: &Partitioned, key: usize) -> Result<u64> {
    let mut index: HashMap<Value, &Row> = HashMap::with_capacity(previous.total_rows());
    for part in &previous.parts {
        for row in part.iter() {
            index.insert(row[key].clone(), row);
        }
    }
    let mut changed = 0u64;
    for part in &current.parts {
        for row in part.iter() {
            match index.get(&row[key]) {
                Some(old) if **old == *row => {}
                _ => changed += 1,
            }
        }
    }
    Ok(changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::SchemaRef;
    use spinner_common::{row_of, DataType, Field, Schema};
    use spinner_parser::parse_sql;
    use spinner_plan::builder::SchemaProvider;
    use spinner_plan::plan_query;

    struct CatalogProvider<'a>(&'a Catalog);

    impl SchemaProvider for CatalogProvider<'_> {
        fn table_schema(&self, name: &str) -> Option<SchemaRef> {
            self.0.get(name).ok().map(|t| Arc::clone(t.schema()))
        }

        fn table_primary_key(&self, name: &str) -> Option<usize> {
            self.0.get(name).ok().and_then(|t| t.primary_key())
        }
    }

    fn setup_edges(catalog: &Catalog, partitions: usize) {
        let schema = Arc::new(Schema::new(vec![
            Field::new("src", DataType::Int),
            Field::new("dst", DataType::Int),
            Field::new("weight", DataType::Float),
        ]));
        catalog
            .create_table("edges", schema, partitions, Some(0), None)
            .unwrap();
        // Small chain graph: 1 -> 2 -> 3 -> 4, plus 1 -> 3.
        let rows = vec![
            row_of([Value::Int(1), Value::Int(2), Value::Float(1.0)]),
            row_of([Value::Int(2), Value::Int(3), Value::Float(1.0)]),
            row_of([Value::Int(3), Value::Int(4), Value::Float(1.0)]),
            row_of([Value::Int(1), Value::Int(3), Value::Float(5.0)]),
        ];
        catalog.with_table_mut("edges", |t| t.insert(rows)).unwrap();
    }

    fn run(catalog: &Catalog, config: &EngineConfig, sql: &str) -> Result<Batch> {
        let stmt = parse_sql(sql)?;
        let spinner_parser::Statement::Query(q) = stmt else {
            panic!("not a query")
        };
        let plan = plan_query(&q, &CatalogProvider(catalog), config)?;
        let registry = TempRegistry::new();
        let stats = ExecStats::new();
        let guard = QueryGuard::unlimited();
        let faults = FaultInjector::disabled();
        let tracer = Tracer::disabled();
        let checkpoints = CheckpointStore::new();
        let join_cache = JoinStateCache::new();
        let exec = Executor {
            catalog,
            registry: &registry,
            config,
            stats: &stats,
            guard: &guard,
            faults: &faults,
            tracer: &tracer,
            checkpoints: &checkpoints,
            pool: None,
            join_cache: &join_cache,
        };
        exec.run_query(&plan)
    }

    fn run_ok(catalog: &Catalog, config: &EngineConfig, sql: &str) -> Batch {
        run(catalog, config, sql).unwrap()
    }

    #[test]
    fn scan_filter_project() {
        let catalog = Catalog::new();
        let config = EngineConfig::default();
        setup_edges(&catalog, config.partitions);
        let batch = run_ok(&catalog, &config, "SELECT dst FROM edges WHERE src = 1");
        let mut vals: Vec<i64> = batch
            .rows()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        vals.sort();
        assert_eq!(vals, vec![2, 3]);
    }

    #[test]
    fn union_distinct_collects_nodes() {
        let catalog = Catalog::new();
        let config = EngineConfig::default();
        setup_edges(&catalog, config.partitions);
        let batch = run_ok(
            &catalog,
            &config,
            "SELECT src FROM edges UNION SELECT dst FROM edges",
        );
        assert_eq!(batch.len(), 4); // nodes 1..4
    }

    #[test]
    fn group_by_counts() {
        let catalog = Catalog::new();
        let config = EngineConfig::default();
        setup_edges(&catalog, config.partitions);
        let batch = run_ok(
            &catalog,
            &config,
            "SELECT src, COUNT(dst) AS n FROM edges GROUP BY src ORDER BY src",
        );
        let rows: Vec<(i64, i64)> = batch
            .rows()
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        assert_eq!(rows, vec![(1, 2), (2, 1), (3, 1)]);
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let catalog = Catalog::new();
        let config = EngineConfig::default();
        setup_edges(&catalog, config.partitions);
        let batch = run_ok(
            &catalog,
            &config,
            "SELECT COUNT(*), SUM(weight) FROM edges WHERE src = 999",
        );
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.rows()[0][0], Value::Int(0));
        assert!(batch.rows()[0][1].is_null());
    }

    #[test]
    fn left_join_pads_unmatched() {
        let catalog = Catalog::new();
        let config = EngineConfig::default();
        setup_edges(&catalog, config.partitions);
        // node 4 has no outgoing edge
        let batch = run_ok(
            &catalog,
            &config,
            "SELECT n.dst, e2.dst FROM edges n LEFT JOIN edges e2 ON n.dst = e2.src \
             WHERE n.src = 3",
        );
        assert_eq!(batch.len(), 1);
        assert!(batch.rows()[0][1].is_null());
    }

    #[test]
    fn iterative_cte_rename_path_runs_n_iterations() {
        let catalog = Catalog::new();
        let config = EngineConfig::default();
        setup_edges(&catalog, config.partitions);
        // value doubles every iteration: 1 -> 2^5 = 32
        let batch = run_ok(
            &catalog,
            &config,
            "WITH ITERATIVE t (k, v) AS (
                 SELECT 1, 1
             ITERATE
                 SELECT k, v * 2 FROM t
             UNTIL 5 ITERATIONS)
             SELECT v FROM t",
        );
        assert_eq!(batch.rows()[0][0], Value::Int(32));
    }

    #[test]
    fn iterative_cte_merge_path_preserves_unmatched_rows() {
        let catalog = Catalog::new();
        let config = EngineConfig::default();
        setup_edges(&catalog, config.partitions);
        // Only rows with k < 3 are updated; others must keep their value.
        let batch = run_ok(
            &catalog,
            &config,
            "WITH ITERATIVE t (k, v) AS (
                 SELECT src, 0 FROM edges UNION SELECT dst, 0 FROM edges
             ITERATE
                 SELECT k, v + 1 FROM t WHERE k < 3
             UNTIL 4 ITERATIONS)
             SELECT k, v FROM t ORDER BY k",
        );
        let rows: Vec<(i64, i64)> = batch
            .rows()
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        assert_eq!(rows, vec![(1, 4), (2, 4), (3, 0), (4, 0)]);
    }

    #[test]
    fn iterative_cte_delta_termination_converges() {
        let catalog = Catalog::new();
        let config = EngineConfig::default();
        setup_edges(&catalog, config.partitions);
        // v converges to 10 and stops changing -> delta 0 < 1 stops.
        let batch = run_ok(
            &catalog,
            &config,
            "WITH ITERATIVE t (k, v) AS (
                 SELECT 1, 0
             ITERATE
                 SELECT k, LEAST(v + 4, 10) FROM t
             UNTIL DELTA < 1)
             SELECT v FROM t",
        );
        assert_eq!(batch.rows()[0][0], Value::Int(10));
    }

    #[test]
    fn iterative_cte_data_termination() {
        let catalog = Catalog::new();
        let config = EngineConfig::default();
        setup_edges(&catalog, config.partitions);
        let batch = run_ok(
            &catalog,
            &config,
            "WITH ITERATIVE t (k, v) AS (
                 SELECT 1, 0
             ITERATE
                 SELECT k, v + 1 FROM t
             UNTIL (v >= 7))
             SELECT v FROM t",
        );
        assert_eq!(batch.rows()[0][0], Value::Int(7));
    }

    #[test]
    fn iterative_cte_updates_termination() {
        let catalog = Catalog::new();
        let config = EngineConfig::default();
        setup_edges(&catalog, config.partitions);
        // One row updated per iteration; stop once >= 3 cumulative updates.
        let batch = run_ok(
            &catalog,
            &config,
            "WITH ITERATIVE t (k, v) AS (
                 SELECT 1, 0
             ITERATE
                 SELECT k, v + 1 FROM t
             UNTIL 3 UPDATES)
             SELECT v FROM t",
        );
        assert_eq!(batch.rows()[0][0], Value::Int(3));
    }

    #[test]
    fn duplicate_iteration_key_raises() {
        let catalog = Catalog::new();
        let config = EngineConfig::default();
        setup_edges(&catalog, config.partitions);
        // Ri produces two rows for key 1 while updating a subset (merge
        // path), which must raise the paper's duplicate-key error.
        let err = run(
            &catalog,
            &config,
            "WITH ITERATIVE t (k, v) AS (
                 SELECT src, 0 FROM edges UNION SELECT dst, 0 FROM edges
             ITERATE
                 SELECT 1, v + 1 FROM t WHERE k < 3
             UNTIL 2 ITERATIONS)
             SELECT * FROM t",
        )
        .unwrap_err();
        assert!(matches!(err, Error::DuplicateIterationKey { .. }));
    }

    #[test]
    fn runaway_loop_hits_safety_limit() {
        let catalog = Catalog::new();
        let config = EngineConfig::default().with_max_iterations(10);
        setup_edges(&catalog, config.partitions);
        let err = run(
            &catalog,
            &config,
            "WITH ITERATIVE t (k, v) AS (
                 SELECT 1, 0
             ITERATE
                 SELECT k, v + 1 FROM t
             UNTIL (v < 0))
             SELECT v FROM t",
        )
        .unwrap_err();
        assert!(matches!(err, Error::IterationLimitExceeded { .. }));
    }

    #[test]
    fn recursive_cte_transitive_closure() {
        let catalog = Catalog::new();
        let config = EngineConfig::default();
        setup_edges(&catalog, config.partitions);
        let batch = run_ok(
            &catalog,
            &config,
            "WITH RECURSIVE reach (node) AS (
                 SELECT dst FROM edges WHERE src = 1
                 UNION
                 SELECT e.dst FROM edges e JOIN reach r ON e.src = r.node
             )
             SELECT node FROM reach ORDER BY node",
        );
        let nodes: Vec<i64> = batch
            .rows()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        assert_eq!(nodes, vec![2, 3, 4]);
    }

    #[test]
    fn recursive_union_all_counts_paths() {
        let catalog = Catalog::new();
        let config = EngineConfig::default();
        setup_edges(&catalog, config.partitions);
        // 1->2->3->4, 1->3->4: two distinct paths reach node 4.
        let batch = run_ok(
            &catalog,
            &config,
            "WITH RECURSIVE walk (node) AS (
                 SELECT dst FROM edges WHERE src = 1
                 UNION ALL
                 SELECT e.dst FROM edges e JOIN walk w ON e.src = w.node
             )
             SELECT COUNT(*) FROM walk WHERE node = 4",
        );
        assert_eq!(batch.rows()[0][0], Value::Int(2));
    }

    #[test]
    fn rename_path_moves_fewer_rows_than_merge_path() {
        let sql = "WITH ITERATIVE t (k, v) AS (
                 SELECT src, 0 FROM edges UNION SELECT dst, 0 FROM edges
             ITERATE
                 SELECT k, v + 1 FROM t
             UNTIL 10 ITERATIONS)
             SELECT COUNT(*) FROM t";
        let run_with = |config: &EngineConfig| -> (Batch, crate::stats::StatsSnapshot) {
            let catalog = Catalog::new();
            setup_edges(&catalog, config.partitions);
            let stmt = parse_sql(sql).unwrap();
            let spinner_parser::Statement::Query(q) = stmt else {
                panic!()
            };
            let plan = plan_query(&q, &CatalogProvider(&catalog), config).unwrap();
            let registry = TempRegistry::new();
            let stats = ExecStats::new();
            let guard = QueryGuard::unlimited();
            let faults = FaultInjector::disabled();
            let tracer = Tracer::disabled();
            let checkpoints = CheckpointStore::new();
            let join_cache = JoinStateCache::new();
            let exec = Executor {
                catalog: &catalog,
                registry: &registry,
                config,
                stats: &stats,
                guard: &guard,
                faults: &faults,
                tracer: &tracer,
                checkpoints: &checkpoints,
                pool: None,
                join_cache: &join_cache,
            };
            let batch = exec.run_query(&plan).unwrap();
            (batch, stats.snapshot())
        };
        let optimized = EngineConfig::default();
        let naive = EngineConfig::default().with_minimize_data_movement(false);
        let (b1, s1) = run_with(&optimized);
        let (b2, s2) = run_with(&naive);
        assert_eq!(b1.rows(), b2.rows(), "optimization must not change results");
        assert_eq!(s2.merges, 10, "naive path merges every iteration");
        assert_eq!(s1.merges, 0, "rename path never merges");
        assert!(s1.renames >= 10);
        assert!(
            s2.merge_rows_examined > 0,
            "merge path does per-row work the rename path avoids"
        );
    }

    #[test]
    fn parallel_partitions_match_sequential() {
        let sql = "SELECT src, COUNT(dst) AS n FROM edges GROUP BY src ORDER BY src";
        let catalog = Catalog::new();
        let seq = EngineConfig::default();
        setup_edges(&catalog, seq.partitions);
        let par = EngineConfig::default().with_parallel_partitions(true);
        let b1 = run_ok(&catalog, &seq, sql);
        let b2 = run_ok(&catalog, &par, sql);
        assert_eq!(b1.rows(), b2.rows());
    }
}
