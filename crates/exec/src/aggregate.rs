//! Aggregate accumulators.
//!
//! Each accumulator supports `update` (one input value), `merge` (another
//! accumulator's state — used by the partial/final split of global
//! aggregates across partitions) and `finish`. NULL inputs are ignored by
//! every function except `COUNT(*)`, per SQL semantics; `SUM`/`MIN`/`MAX`
//! over zero non-NULL inputs yield NULL and `COUNT` yields 0.

use std::collections::HashSet;

use spinner_common::{Error, Result, Value};
use spinner_plan::{AggExpr, AggFunc};

/// Running state for one aggregate in one group.
#[derive(Debug, Clone)]
pub enum Accumulator {
    /// `COUNT(expr)`: non-NULL input count.
    Count {
        /// Values counted so far.
        n: i64,
        /// Present for `COUNT(DISTINCT ...)`: values already seen.
        distinct: Option<HashSet<Value>>,
    },
    /// `COUNT(*)`: row count, NULLs included.
    CountStar {
        /// Rows counted so far.
        n: i64,
    },
    /// `SUM(expr)`; NULL until the first non-NULL input.
    Sum {
        /// Running sum, `None` before any non-NULL input.
        acc: Option<Value>,
        /// Present for `SUM(DISTINCT ...)`: values already seen.
        distinct: Option<HashSet<Value>>,
    },
    /// `MIN(expr)`; NULL until the first non-NULL input.
    Min {
        /// Running minimum.
        acc: Option<Value>,
    },
    /// `MAX(expr)`; NULL until the first non-NULL input.
    Max {
        /// Running maximum.
        acc: Option<Value>,
    },
    /// `AVG(expr)` over the non-NULL inputs.
    Avg {
        /// Sum of inputs as f64.
        sum: f64,
        /// Count of non-NULL inputs.
        n: i64,
        /// Present for `AVG(DISTINCT ...)`: values already seen.
        distinct: Option<HashSet<Value>>,
    },
    /// `ARG_MIN(val, key)` / `ARG_MAX(val, key)`: the `val` of the row
    /// with the extreme `key`. Rows with a NULL key are ignored. Ties on
    /// the key break by the total order on `val` (smaller wins for
    /// ARG_MIN, larger for ARG_MAX), so the selection is a fold over the
    /// lexicographic `(key, val)` order — associative and commutative,
    /// which keeps results independent of partition and merge order.
    ArgExtreme {
        /// `true` for ARG_MAX.
        max: bool,
        /// Best `(key, val)` pair so far.
        best: Option<(Value, Value)>,
    },
}

impl Accumulator {
    /// Fresh accumulator for an aggregate expression.
    pub fn new(agg: &AggExpr) -> Accumulator {
        let distinct_set = || {
            if agg.distinct {
                Some(HashSet::new())
            } else {
                None
            }
        };
        match agg.func {
            AggFunc::Count => Accumulator::Count {
                n: 0,
                distinct: distinct_set(),
            },
            AggFunc::CountStar => Accumulator::CountStar { n: 0 },
            AggFunc::Sum => Accumulator::Sum {
                acc: None,
                distinct: distinct_set(),
            },
            AggFunc::Min => Accumulator::Min { acc: None },
            AggFunc::Max => Accumulator::Max { acc: None },
            AggFunc::Avg => Accumulator::Avg {
                sum: 0.0,
                n: 0,
                distinct: distinct_set(),
            },
            AggFunc::ArgMin => Accumulator::ArgExtreme {
                max: false,
                best: None,
            },
            AggFunc::ArgMax => Accumulator::ArgExtreme {
                max: true,
                best: None,
            },
        }
    }

    /// `true` when `candidate` should replace `best` under the
    /// lexicographic `(key, val)` order of an [`Accumulator::ArgExtreme`].
    fn pair_replaces(
        best: &Option<(Value, Value)>,
        candidate: (&Value, &Value),
        max: bool,
    ) -> bool {
        let Some((bk, bv)) = best else { return true };
        let ord = candidate
            .0
            .cmp_total(bk)
            .then_with(|| candidate.1.cmp_total(bv));
        if max {
            ord.is_gt()
        } else {
            ord.is_lt()
        }
    }

    /// Feed one `(val, key)` pair into an [`Accumulator::ArgExtreme`].
    /// NULL keys are ignored, mirroring how other aggregates skip NULLs.
    pub fn update_pair(&mut self, value: &Value, key: &Value) -> Result<()> {
        let Accumulator::ArgExtreme { max, best } = self else {
            return Err(Error::execution(
                "update_pair on a single-argument accumulator",
            ));
        };
        if key.is_null() {
            return Ok(());
        }
        if Accumulator::pair_replaces(best, (key, value), *max) {
            *best = Some((key.clone(), value.clone()));
        }
        Ok(())
    }

    /// Feed one value (already evaluated from the aggregate's argument;
    /// `Value::Null` for `COUNT(*)` placeholder rows is never produced —
    /// CountStar ignores its input entirely).
    pub fn update(&mut self, value: &Value) -> Result<()> {
        match self {
            Accumulator::CountStar { n } => {
                *n += 1;
                Ok(())
            }
            Accumulator::ArgExtreme { .. } => Err(Error::execution(
                "two-argument aggregate fed a single value",
            )),
            _ if value.is_null() => Ok(()),
            Accumulator::Count { n, distinct } => {
                if let Some(seen) = distinct {
                    if !seen.insert(value.clone()) {
                        return Ok(());
                    }
                }
                *n += 1;
                Ok(())
            }
            Accumulator::Sum { acc, distinct } => {
                if let Some(seen) = distinct {
                    if !seen.insert(value.clone()) {
                        return Ok(());
                    }
                }
                *acc = Some(add_values(acc.take(), value)?);
                Ok(())
            }
            Accumulator::Min { acc } => {
                let replace = match acc {
                    Some(cur) => value.cmp_total(cur).is_lt(),
                    None => true,
                };
                if replace {
                    *acc = Some(value.clone());
                }
                Ok(())
            }
            Accumulator::Max { acc } => {
                let replace = match acc {
                    Some(cur) => value.cmp_total(cur).is_gt(),
                    None => true,
                };
                if replace {
                    *acc = Some(value.clone());
                }
                Ok(())
            }
            Accumulator::Avg { sum, n, distinct } => {
                if let Some(seen) = distinct {
                    if !seen.insert(value.clone()) {
                        return Ok(());
                    }
                }
                *sum += value.as_f64()?;
                *n += 1;
                Ok(())
            }
        }
    }

    /// Merge another accumulator of the same kind (partial aggregation).
    /// DISTINCT accumulators merge their seen-sets.
    pub fn merge(&mut self, other: Accumulator) -> Result<()> {
        match (self, other) {
            (Accumulator::CountStar { n }, Accumulator::CountStar { n: m }) => {
                *n += m;
                Ok(())
            }
            (Accumulator::Count { n, distinct }, Accumulator::Count { n: m, distinct: od }) => {
                match (distinct, od) {
                    (Some(seen), Some(oseen)) => {
                        for v in oseen {
                            if seen.insert(v) {
                                *n += 1;
                            }
                        }
                        Ok(())
                    }
                    (None, None) => {
                        *n += m;
                        Ok(())
                    }
                    _ => Err(Error::execution("mismatched DISTINCT accumulators")),
                }
            }
            (
                Accumulator::Sum { acc, distinct },
                Accumulator::Sum {
                    acc: oacc,
                    distinct: od,
                },
            ) => match (distinct, od) {
                (Some(seen), Some(oseen)) => {
                    for v in oseen {
                        if seen.insert(v.clone()) {
                            *acc = Some(add_values(acc.take(), &v)?);
                        }
                    }
                    Ok(())
                }
                (None, None) => {
                    if let Some(v) = oacc {
                        *acc = Some(add_values(acc.take(), &v)?);
                    }
                    Ok(())
                }
                _ => Err(Error::execution("mismatched DISTINCT accumulators")),
            },
            (Accumulator::Min { acc }, Accumulator::Min { acc: o }) => {
                if let Some(v) = o {
                    let replace = match acc {
                        Some(cur) => v.cmp_total(cur).is_lt(),
                        None => true,
                    };
                    if replace {
                        *acc = Some(v);
                    }
                }
                Ok(())
            }
            (Accumulator::Max { acc }, Accumulator::Max { acc: o }) => {
                if let Some(v) = o {
                    let replace = match acc {
                        Some(cur) => v.cmp_total(cur).is_gt(),
                        None => true,
                    };
                    if replace {
                        *acc = Some(v);
                    }
                }
                Ok(())
            }
            (
                Accumulator::Avg { sum, n, distinct },
                Accumulator::Avg {
                    sum: os,
                    n: om,
                    distinct: od,
                },
            ) => match (distinct, od) {
                (Some(seen), Some(oseen)) => {
                    for v in oseen {
                        if seen.insert(v.clone()) {
                            *sum += v.as_f64()?;
                            *n += 1;
                        }
                    }
                    Ok(())
                }
                (None, None) => {
                    *sum += os;
                    *n += om;
                    Ok(())
                }
                _ => Err(Error::execution("mismatched DISTINCT accumulators")),
            },
            (
                Accumulator::ArgExtreme { max, best },
                Accumulator::ArgExtreme {
                    max: omax,
                    best: obest,
                },
            ) => {
                if *max != omax {
                    return Err(Error::execution(
                        "cannot merge ARG_MIN and ARG_MAX accumulators",
                    ));
                }
                if let Some((k, v)) = obest {
                    if Accumulator::pair_replaces(best, (&k, &v), *max) {
                        *best = Some((k, v));
                    }
                }
                Ok(())
            }
            _ => Err(Error::execution(
                "cannot merge accumulators of different kinds",
            )),
        }
    }

    /// Produce the aggregate result.
    pub fn finish(self) -> Value {
        match self {
            Accumulator::Count { n, .. } | Accumulator::CountStar { n } => Value::Int(n),
            Accumulator::Sum { acc, .. } => acc.unwrap_or(Value::Null),
            Accumulator::Min { acc } | Accumulator::Max { acc } => acc.unwrap_or(Value::Null),
            Accumulator::Avg { sum, n, .. } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            Accumulator::ArgExtreme { best, .. } => best.map(|(_, v)| v).unwrap_or(Value::Null),
        }
    }
}

impl Accumulator {
    /// Number of cells the partial state of `func` occupies in a
    /// partial-aggregation row (two-phase aggregation).
    pub fn state_width(func: AggFunc) -> usize {
        match func {
            AggFunc::Avg => 2,                      // (sum, count)
            AggFunc::ArgMin | AggFunc::ArgMax => 2, // (key, val)
            _ => 1,
        }
    }

    /// Encode this accumulator as partial-state cells. Only valid for
    /// non-DISTINCT accumulators (the planner never two-phases DISTINCT).
    pub fn into_state(self) -> Vec<Value> {
        match self {
            Accumulator::Count { n, .. } | Accumulator::CountStar { n } => vec![Value::Int(n)],
            Accumulator::Sum { acc, .. } => vec![acc.unwrap_or(Value::Null)],
            Accumulator::Min { acc } | Accumulator::Max { acc } => {
                vec![acc.unwrap_or(Value::Null)]
            }
            Accumulator::Avg { sum, n, .. } => vec![Value::Float(sum), Value::Int(n)],
            Accumulator::ArgExtreme { best, .. } => match best {
                Some((k, v)) => vec![k, v],
                None => vec![Value::Null, Value::Null],
            },
        }
    }

    /// Merge partial-state cells (produced by [`Accumulator::into_state`]
    /// on another partition) into this accumulator.
    pub fn merge_state(&mut self, cells: &[Value]) -> Result<()> {
        match self {
            Accumulator::Count { n, distinct: None } | Accumulator::CountStar { n } => {
                *n += cells[0].as_i64()?;
                Ok(())
            }
            Accumulator::Sum {
                acc,
                distinct: None,
            } => {
                if !cells[0].is_null() {
                    *acc = Some(add_values(acc.take(), &cells[0])?);
                }
                Ok(())
            }
            Accumulator::Min { acc } => {
                if !cells[0].is_null() {
                    let replace = match acc {
                        Some(cur) => cells[0].cmp_total(cur).is_lt(),
                        None => true,
                    };
                    if replace {
                        *acc = Some(cells[0].clone());
                    }
                }
                Ok(())
            }
            Accumulator::Max { acc } => {
                if !cells[0].is_null() {
                    let replace = match acc {
                        Some(cur) => cells[0].cmp_total(cur).is_gt(),
                        None => true,
                    };
                    if replace {
                        *acc = Some(cells[0].clone());
                    }
                }
                Ok(())
            }
            Accumulator::Avg {
                sum,
                n,
                distinct: None,
            } => {
                *sum += cells[0].as_f64()?;
                *n += cells[1].as_i64()?;
                Ok(())
            }
            Accumulator::ArgExtreme { max, best } => {
                if !cells[0].is_null()
                    && Accumulator::pair_replaces(best, (&cells[0], &cells[1]), *max)
                {
                    *best = Some((cells[0].clone(), cells[1].clone()));
                }
                Ok(())
            }
            _ => Err(Error::execution(
                "DISTINCT accumulators cannot merge partial states",
            )),
        }
    }
}

/// SUM addition: integers stay integers (with overflow checks), any float
/// widens the accumulator to float.
fn add_values(acc: Option<Value>, v: &Value) -> Result<Value> {
    let acc = match acc {
        None => return Ok(v.clone()),
        Some(a) => a,
    };
    match (&acc, v) {
        (Value::Int(a), Value::Int(b)) => a
            .checked_add(*b)
            .map(Value::Int)
            .ok_or_else(|| Error::Arithmetic("integer overflow in SUM".into())),
        _ => Ok(Value::Float(acc.as_f64()? + v.as_f64()?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(func: AggFunc, distinct: bool) -> AggExpr {
        AggExpr {
            func,
            arg: None,
            by: None,
            distinct,
            name: "a".into(),
        }
    }

    #[test]
    fn count_ignores_nulls_count_star_does_not() {
        let mut c = Accumulator::new(&agg(AggFunc::Count, false));
        let mut cs = Accumulator::new(&agg(AggFunc::CountStar, false));
        for v in [Value::Int(1), Value::Null, Value::Int(2)] {
            c.update(&v).unwrap();
            cs.update(&v).unwrap();
        }
        assert_eq!(c.finish(), Value::Int(2));
        assert_eq!(cs.finish(), Value::Int(3));
    }

    #[test]
    fn sum_empty_is_null() {
        let s = Accumulator::new(&agg(AggFunc::Sum, false));
        assert!(s.finish().is_null());
    }

    #[test]
    fn sum_int_stays_int_mixed_widens() {
        let mut s = Accumulator::new(&agg(AggFunc::Sum, false));
        s.update(&Value::Int(1)).unwrap();
        s.update(&Value::Int(2)).unwrap();
        assert_eq!(s.finish(), Value::Int(3));
        let mut s = Accumulator::new(&agg(AggFunc::Sum, false));
        s.update(&Value::Int(1)).unwrap();
        s.update(&Value::Float(0.5)).unwrap();
        assert_eq!(s.finish(), Value::Float(1.5));
    }

    #[test]
    fn distinct_sum_dedupes() {
        let mut s = Accumulator::new(&agg(AggFunc::Sum, true));
        for v in [Value::Int(5), Value::Int(5), Value::Int(3)] {
            s.update(&v).unwrap();
        }
        assert_eq!(s.finish(), Value::Int(8));
    }

    #[test]
    fn min_max_track_extremes() {
        let mut mn = Accumulator::new(&agg(AggFunc::Min, false));
        let mut mx = Accumulator::new(&agg(AggFunc::Max, false));
        for v in [Value::Int(3), Value::Int(1), Value::Int(2)] {
            mn.update(&v).unwrap();
            mx.update(&v).unwrap();
        }
        assert_eq!(mn.finish(), Value::Int(1));
        assert_eq!(mx.finish(), Value::Int(3));
    }

    #[test]
    fn avg_is_float() {
        let mut a = Accumulator::new(&agg(AggFunc::Avg, false));
        a.update(&Value::Int(1)).unwrap();
        a.update(&Value::Int(2)).unwrap();
        assert_eq!(a.finish(), Value::Float(1.5));
    }

    #[test]
    fn merge_combines_partials() {
        let mut a = Accumulator::new(&agg(AggFunc::Sum, false));
        a.update(&Value::Int(1)).unwrap();
        let mut b = Accumulator::new(&agg(AggFunc::Sum, false));
        b.update(&Value::Int(2)).unwrap();
        a.merge(b).unwrap();
        assert_eq!(a.finish(), Value::Int(3));
    }

    #[test]
    fn merge_distinct_counts_once() {
        let mk = || {
            let mut acc = Accumulator::new(&agg(AggFunc::Count, true));
            acc.update(&Value::Int(7)).unwrap();
            acc
        };
        let mut a = mk();
        a.merge(mk()).unwrap();
        assert_eq!(a.finish(), Value::Int(1));
    }

    #[test]
    fn merge_kind_mismatch_errors() {
        let mut a = Accumulator::new(&agg(AggFunc::Sum, false));
        let b = Accumulator::new(&agg(AggFunc::Min, false));
        assert!(a.merge(b).is_err());
    }

    #[test]
    fn arg_min_tracks_value_at_smallest_key() {
        let mut a = Accumulator::new(&agg(AggFunc::ArgMin, false));
        a.update_pair(&Value::Int(10), &Value::Float(3.0)).unwrap();
        a.update_pair(&Value::Int(20), &Value::Float(1.0)).unwrap();
        a.update_pair(&Value::Int(30), &Value::Float(2.0)).unwrap();
        assert_eq!(a.finish(), Value::Int(20));
    }

    #[test]
    fn arg_extreme_ignores_null_keys_and_empty_is_null() {
        let mut a = Accumulator::new(&agg(AggFunc::ArgMax, false));
        a.update_pair(&Value::Int(1), &Value::Null).unwrap();
        assert!(a.clone().finish().is_null());
        a.update_pair(&Value::Int(2), &Value::Int(5)).unwrap();
        assert_eq!(a.finish(), Value::Int(2));
    }

    #[test]
    fn arg_extreme_tie_breaks_on_value() {
        // Equal keys: ARG_MIN keeps the smaller value, ARG_MAX the larger
        // — regardless of arrival order, so partitioning cannot matter.
        for flip in [false, true] {
            let mut mn = Accumulator::new(&agg(AggFunc::ArgMin, false));
            let mut mx = Accumulator::new(&agg(AggFunc::ArgMax, false));
            let (first, second) = if flip { (9, 4) } else { (4, 9) };
            for v in [first, second] {
                mn.update_pair(&Value::Int(v), &Value::Int(1)).unwrap();
                mx.update_pair(&Value::Int(v), &Value::Int(1)).unwrap();
            }
            assert_eq!(mn.finish(), Value::Int(4));
            assert_eq!(mx.finish(), Value::Int(9));
        }
    }

    #[test]
    fn arg_extreme_merge_and_state_round_trip() {
        let mut a = Accumulator::new(&agg(AggFunc::ArgMin, false));
        a.update_pair(&Value::Int(7), &Value::Int(3)).unwrap();
        let mut b = Accumulator::new(&agg(AggFunc::ArgMin, false));
        b.update_pair(&Value::Int(8), &Value::Int(2)).unwrap();
        let cells = b.clone().into_state();
        assert_eq!(cells.len(), Accumulator::state_width(AggFunc::ArgMin));
        a.merge(b).unwrap();
        assert_eq!(a.clone().finish(), Value::Int(8));
        let mut c = Accumulator::new(&agg(AggFunc::ArgMin, false));
        c.update_pair(&Value::Int(7), &Value::Int(3)).unwrap();
        c.merge_state(&cells).unwrap();
        assert_eq!(c.finish(), Value::Int(8));
    }

    #[test]
    fn arg_extreme_rejects_single_value_update() {
        let mut a = Accumulator::new(&agg(AggFunc::ArgMin, false));
        assert!(a.update(&Value::Int(1)).is_err());
        let mut s = Accumulator::new(&agg(AggFunc::Sum, false));
        assert!(s.update_pair(&Value::Int(1), &Value::Int(2)).is_err());
    }
}
