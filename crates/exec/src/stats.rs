//! Runtime execution statistics.
//!
//! All counters are atomic so parallel partition workers can update them.
//! `rows_moved` counts rows that crossed a partition boundary in an
//! exchange — the simulator's stand-in for network traffic between MPP
//! nodes, and the quantity the rename optimization of Figure 8 reduces.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters collected during query execution.
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Rows that changed partition inside an Exchange (simulated network).
    pub rows_moved: AtomicU64,
    /// Rows copied to every partition by broadcast exchanges.
    pub rows_broadcast: AtomicU64,
    /// Rows written by Materialize steps.
    pub rows_materialized: AtomicU64,
    /// Number of rename operations (O(1) pointer moves).
    pub renames: AtomicU64,
    /// Number of merge steps executed.
    pub merges: AtomicU64,
    /// Rows examined by merge steps (join work the rename path avoids).
    pub merge_rows_examined: AtomicU64,
    /// Loop iterations across all loops in the statement.
    pub iterations: AtomicU64,
    /// Rows reported as updated by iterations.
    pub rows_updated: AtomicU64,
    /// Join operators executed (hash or nested-loop). Common-result
    /// extraction reduces this: a hoisted join runs once instead of once
    /// per iteration.
    pub joins_executed: AtomicU64,
    /// Faults fired by the chaos-testing injector (0 in production).
    pub faults_injected: AtomicU64,
    /// Loop checkpoints snapshotted by the recovery subsystem.
    pub checkpoints_taken: AtomicU64,
    /// Estimated bytes captured by loop checkpoints.
    pub checkpoint_bytes: AtomicU64,
    /// Transient retries of a partition worker closure.
    pub partition_retries: AtomicU64,
    /// Transient re-runs of a whole step (or the final query) against its
    /// unchanged input snapshot.
    pub step_retries: AtomicU64,
    /// Loop rollbacks to the last checkpoint after retries were exhausted.
    pub loop_rollbacks: AtomicU64,
    /// Iterations re-executed because of rollbacks.
    pub iterations_replayed: AtomicU64,
    /// Intermediate-state regions spilled to disk under memory pressure.
    pub spill_events: AtomicU64,
    /// Bytes of serialized intermediate state written to spill files.
    pub spill_bytes_written: AtomicU64,
    /// Bytes read back from spill files on rehydration.
    pub spill_bytes_read: AtomicU64,
    /// High-water mark of bytes tracked by the memory accountant.
    pub peak_tracked_bytes: AtomicU64,
    /// OS threads spawned by parallel operators (spawn-per-operator path).
    /// Zero in steady state when the persistent worker pool is enabled.
    pub threads_spawned: AtomicU64,
    /// Per-partition tasks dispatched to the persistent worker pool.
    pub pool_tasks: AtomicU64,
    /// Loop-invariant hash-join build tables constructed by the join-state
    /// cache (first probe, or rebuild after invalidation).
    pub join_builds: AtomicU64,
    /// Loop-invariant hash-join builds served from the join-state cache
    /// instead of being re-hashed.
    pub join_builds_reused: AtomicU64,
    /// Microseconds the statement waited in the admission queue before it
    /// was allowed to start (0 with admission control off or a free slot).
    pub admission_waited_us: AtomicU64,
    /// Admission queue depth at enqueue time (0 = fast-path admit).
    pub admission_queue_depth: AtomicU64,
    /// Iterative loops the optimizer proved delta-eligible and ran
    /// semi-naive (joining the delta table instead of the full CTE table).
    pub semi_naive_loops: AtomicU64,
    /// Rows fed into loop bodies through delta-table scans, summed over
    /// iterations — the semi-naive replacement for full-table join input.
    pub delta_rows_fed: AtomicU64,
    /// Changed rows written into delta tables by merge steps (the next
    /// iteration's join input).
    pub delta_rows_emitted: AtomicU64,
    /// Checkpoint epochs committed durably to the spill manifest.
    pub durability_epochs: AtomicU64,
    /// Spill/checkpoint files read back with every checksum verified.
    pub durability_verified: AtomicU64,
    /// Reads that failed verification and surfaced as `StorageCorrupt`.
    pub durability_corrupt: AtomicU64,
    /// `fsync` calls issued by the atomic-write protocol (file + dir).
    pub durability_fsyncs: AtomicU64,
    /// Durable checkpoint epoch adopted from a dead engine's journal
    /// (0 when the statement started fresh).
    pub restart_adopted_epoch: AtomicU64,
    /// Iteration number the loop driver was seeded with after adoption.
    pub restart_resumed_iteration: AtomicU64,
    /// Iterations lost to the crash (journal head minus adopted
    /// checkpoint) that the resumed run re-executes.
    pub restart_replayed_iterations: AtomicU64,
}

impl ExecStats {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Copy the counters into a plain snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            rows_moved: self.rows_moved.load(Ordering::Relaxed),
            rows_broadcast: self.rows_broadcast.load(Ordering::Relaxed),
            rows_materialized: self.rows_materialized.load(Ordering::Relaxed),
            renames: self.renames.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
            merge_rows_examined: self.merge_rows_examined.load(Ordering::Relaxed),
            iterations: self.iterations.load(Ordering::Relaxed),
            rows_updated: self.rows_updated.load(Ordering::Relaxed),
            joins_executed: self.joins_executed.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            checkpoints_taken: self.checkpoints_taken.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            partition_retries: self.partition_retries.load(Ordering::Relaxed),
            step_retries: self.step_retries.load(Ordering::Relaxed),
            loop_rollbacks: self.loop_rollbacks.load(Ordering::Relaxed),
            iterations_replayed: self.iterations_replayed.load(Ordering::Relaxed),
            spill_events: self.spill_events.load(Ordering::Relaxed),
            spill_bytes_written: self.spill_bytes_written.load(Ordering::Relaxed),
            spill_bytes_read: self.spill_bytes_read.load(Ordering::Relaxed),
            peak_tracked_bytes: self.peak_tracked_bytes.load(Ordering::Relaxed),
            threads_spawned: self.threads_spawned.load(Ordering::Relaxed),
            pool_tasks: self.pool_tasks.load(Ordering::Relaxed),
            join_builds: self.join_builds.load(Ordering::Relaxed),
            join_builds_reused: self.join_builds_reused.load(Ordering::Relaxed),
            admission_waited_us: self.admission_waited_us.load(Ordering::Relaxed),
            admission_queue_depth: self.admission_queue_depth.load(Ordering::Relaxed),
            semi_naive_loops: self.semi_naive_loops.load(Ordering::Relaxed),
            delta_rows_fed: self.delta_rows_fed.load(Ordering::Relaxed),
            delta_rows_emitted: self.delta_rows_emitted.load(Ordering::Relaxed),
            durability_epochs: self.durability_epochs.load(Ordering::Relaxed),
            durability_verified: self.durability_verified.load(Ordering::Relaxed),
            durability_corrupt: self.durability_corrupt.load(Ordering::Relaxed),
            durability_fsyncs: self.durability_fsyncs.load(Ordering::Relaxed),
            restart_adopted_epoch: self.restart_adopted_epoch.load(Ordering::Relaxed),
            restart_resumed_iteration: self.restart_resumed_iteration.load(Ordering::Relaxed),
            restart_replayed_iterations: self.restart_replayed_iterations.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.rows_moved.store(0, Ordering::Relaxed);
        self.rows_broadcast.store(0, Ordering::Relaxed);
        self.rows_materialized.store(0, Ordering::Relaxed);
        self.renames.store(0, Ordering::Relaxed);
        self.merges.store(0, Ordering::Relaxed);
        self.merge_rows_examined.store(0, Ordering::Relaxed);
        self.iterations.store(0, Ordering::Relaxed);
        self.rows_updated.store(0, Ordering::Relaxed);
        self.joins_executed.store(0, Ordering::Relaxed);
        self.faults_injected.store(0, Ordering::Relaxed);
        self.checkpoints_taken.store(0, Ordering::Relaxed);
        self.checkpoint_bytes.store(0, Ordering::Relaxed);
        self.partition_retries.store(0, Ordering::Relaxed);
        self.step_retries.store(0, Ordering::Relaxed);
        self.loop_rollbacks.store(0, Ordering::Relaxed);
        self.iterations_replayed.store(0, Ordering::Relaxed);
        self.spill_events.store(0, Ordering::Relaxed);
        self.spill_bytes_written.store(0, Ordering::Relaxed);
        self.spill_bytes_read.store(0, Ordering::Relaxed);
        self.peak_tracked_bytes.store(0, Ordering::Relaxed);
        self.threads_spawned.store(0, Ordering::Relaxed);
        self.pool_tasks.store(0, Ordering::Relaxed);
        self.join_builds.store(0, Ordering::Relaxed);
        self.join_builds_reused.store(0, Ordering::Relaxed);
        self.admission_waited_us.store(0, Ordering::Relaxed);
        self.admission_queue_depth.store(0, Ordering::Relaxed);
        self.semi_naive_loops.store(0, Ordering::Relaxed);
        self.delta_rows_fed.store(0, Ordering::Relaxed);
        self.delta_rows_emitted.store(0, Ordering::Relaxed);
        self.durability_epochs.store(0, Ordering::Relaxed);
        self.durability_verified.store(0, Ordering::Relaxed);
        self.durability_corrupt.store(0, Ordering::Relaxed);
        self.durability_fsyncs.store(0, Ordering::Relaxed);
        self.restart_adopted_epoch.store(0, Ordering::Relaxed);
        self.restart_resumed_iteration.store(0, Ordering::Relaxed);
        self.restart_replayed_iterations.store(0, Ordering::Relaxed);
    }
}

/// A plain (non-atomic) copy of [`ExecStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Rows that crossed a partition boundary in hash/gather exchanges.
    pub rows_moved: u64,
    /// Rows copied to every partition by broadcast exchanges.
    pub rows_broadcast: u64,
    /// Rows written by Materialize steps.
    pub rows_materialized: u64,
    /// Rename operations (O(1) pointer moves).
    pub renames: u64,
    /// Merge steps executed.
    pub merges: u64,
    /// CTE rows scanned by merge steps.
    pub merge_rows_examined: u64,
    /// Loop iterations executed.
    pub iterations: u64,
    /// Rows reported as updated by merges/replaces.
    pub rows_updated: u64,
    /// Join operators evaluated (per iteration, per join).
    pub joins_executed: u64,
    /// Faults fired by the chaos-testing injector.
    pub faults_injected: u64,
    /// Loop checkpoints snapshotted by the recovery subsystem.
    pub checkpoints_taken: u64,
    /// Estimated bytes captured by loop checkpoints.
    pub checkpoint_bytes: u64,
    /// Transient retries of a partition worker closure.
    pub partition_retries: u64,
    /// Transient re-runs of a whole step against its input snapshot.
    pub step_retries: u64,
    /// Loop rollbacks to the last checkpoint.
    pub loop_rollbacks: u64,
    /// Iterations re-executed because of rollbacks.
    pub iterations_replayed: u64,
    /// Intermediate-state regions spilled to disk under memory pressure.
    pub spill_events: u64,
    /// Bytes of serialized intermediate state written to spill files.
    pub spill_bytes_written: u64,
    /// Bytes read back from spill files on rehydration.
    pub spill_bytes_read: u64,
    /// High-water mark of bytes tracked by the memory accountant.
    pub peak_tracked_bytes: u64,
    /// OS threads spawned by parallel operators (spawn-per-operator path).
    pub threads_spawned: u64,
    /// Per-partition tasks dispatched to the persistent worker pool.
    pub pool_tasks: u64,
    /// Loop-invariant hash-join build tables constructed.
    pub join_builds: u64,
    /// Loop-invariant hash-join builds reused from the join-state cache.
    pub join_builds_reused: u64,
    /// Microseconds the statement waited in the admission queue.
    pub admission_waited_us: u64,
    /// Admission queue depth at enqueue time.
    pub admission_queue_depth: u64,
    /// Iterative loops executed semi-naive (delta-driven).
    pub semi_naive_loops: u64,
    /// Rows fed into loop bodies through delta-table scans.
    pub delta_rows_fed: u64,
    /// Changed rows written into delta tables by merge steps.
    pub delta_rows_emitted: u64,
    /// Checkpoint epochs committed durably to the spill manifest.
    pub durability_epochs: u64,
    /// Spill/checkpoint files read back with every checksum verified.
    pub durability_verified: u64,
    /// Reads that failed verification and surfaced as `StorageCorrupt`.
    pub durability_corrupt: u64,
    /// `fsync` calls issued by the atomic-write protocol (file + dir).
    pub durability_fsyncs: u64,
    /// Durable checkpoint epoch adopted after an engine restart.
    pub restart_adopted_epoch: u64,
    /// Iteration the loop driver resumed from after adoption.
    pub restart_resumed_iteration: u64,
    /// Crash-lost iterations re-executed by the resumed run.
    pub restart_replayed_iterations: u64,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "moved={} broadcast={} materialized={} renames={} merges={} \
             merge_examined={} iterations={} updated={} joins={} faults={}",
            self.rows_moved,
            self.rows_broadcast,
            self.rows_materialized,
            self.renames,
            self.merges,
            self.merge_rows_examined,
            self.iterations,
            self.rows_updated,
            self.joins_executed,
            self.faults_injected,
        )?;
        if self.checkpoints_taken
            + self.checkpoint_bytes
            + self.partition_retries
            + self.step_retries
            + self.loop_rollbacks
            + self.iterations_replayed
            > 0
        {
            write!(
                f,
                " checkpoints={} ckpt_bytes={} retries={}+{} rollbacks={} replayed={}",
                self.checkpoints_taken,
                self.checkpoint_bytes,
                self.partition_retries,
                self.step_retries,
                self.loop_rollbacks,
                self.iterations_replayed,
            )?;
        }
        if self.spill_events + self.spill_bytes_written + self.spill_bytes_read > 0 {
            write!(
                f,
                " spills={} spill_written={} spill_read={} peak_tracked={}",
                self.spill_events,
                self.spill_bytes_written,
                self.spill_bytes_read,
                self.peak_tracked_bytes,
            )?;
        }
        if self.threads_spawned + self.pool_tasks + self.join_builds + self.join_builds_reused > 0 {
            write!(
                f,
                " spawned={} pool_tasks={} join_builds={} join_reused={}",
                self.threads_spawned, self.pool_tasks, self.join_builds, self.join_builds_reused,
            )?;
        }
        if self.admission_waited_us + self.admission_queue_depth > 0 {
            write!(
                f,
                " admission_waited_us={} admission_queue_depth={}",
                self.admission_waited_us, self.admission_queue_depth,
            )?;
        }
        if self.semi_naive_loops + self.delta_rows_fed + self.delta_rows_emitted > 0 {
            write!(
                f,
                " semi_naive_loops={} delta_fed={} delta_emitted={}",
                self.semi_naive_loops, self.delta_rows_fed, self.delta_rows_emitted,
            )?;
        }
        if self.durability_epochs
            + self.durability_verified
            + self.durability_corrupt
            + self.durability_fsyncs
            > 0
        {
            write!(
                f,
                " durability: epochs={} verified={} corrupt_detected={} refsync={}",
                self.durability_epochs,
                self.durability_verified,
                self.durability_corrupt,
                self.durability_fsyncs,
            )?;
        }
        if self.restart_adopted_epoch
            + self.restart_resumed_iteration
            + self.restart_replayed_iterations
            > 0
        {
            write!(
                f,
                " restart: adopted_epoch={} resumed_iteration={} replayed_iterations={}",
                self.restart_adopted_epoch,
                self.restart_resumed_iteration,
                self.restart_replayed_iterations,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let s = ExecStats::new();
        ExecStats::add(&s.rows_moved, 5);
        ExecStats::add(&s.renames, 1);
        let snap = s.snapshot();
        assert_eq!(snap.rows_moved, 5);
        assert_eq!(snap.renames, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
