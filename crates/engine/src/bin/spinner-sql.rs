//! `spinner-sql` — a minimal interactive shell for the engine.
//!
//! ```sh
//! cargo run --release -p spinner-engine --bin spinner-sql
//! ```
//!
//! Statements end with `;` and may span lines. Built-in commands:
//!
//! * `\d` — list tables;
//! * `\stats` — show and reset the execution counters;
//! * `\timing` — toggle per-statement timing;
//! * `\json` — toggle JSON output for `EXPLAIN ANALYZE` profiles;
//! * `\gen <preset> <scale>` — load a synthetic `edges` table
//!   (`dblp | pokec | google`) — only compiled in examples/benches; here we
//!   keep the shell dependency-free, so `\gen` creates a small demo graph;
//! * `\q` — quit.

use std::io::{BufRead, Write};
use std::time::Instant;

use spinner_engine::{Database, QueryResult};

fn main() {
    let db = Database::default();
    let mut timing = false;
    let mut json_profiles = false;
    let mut buffer = String::new();
    let stdin = std::io::stdin();
    println!("spinner-sql — DBSpinner reproduction shell. \\q to quit.");
    prompt(&buffer);
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            match handle_command(&db, trimmed, &mut timing, &mut json_profiles) {
                Command::Quit => return,
                Command::Continue => {
                    prompt(&buffer);
                    continue;
                }
            }
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if trimmed.ends_with(';') {
            let sql = std::mem::take(&mut buffer);
            let started = Instant::now();
            match db.execute(sql.trim().trim_end_matches(';')) {
                Ok(QueryResult::Rows(batch)) => {
                    print!("{}", batch.to_table());
                    println!("({} rows)", batch.len());
                }
                Ok(QueryResult::Affected { rows }) => println!("OK, {rows} rows affected"),
                Ok(QueryResult::Ddl) => println!("OK"),
                Ok(QueryResult::Explain(text)) => println!("{text}"),
                Ok(QueryResult::Analyze(profile)) => {
                    if json_profiles {
                        println!("{}", profile.to_json());
                    } else {
                        print!("{}", profile.render());
                    }
                }
                Err(e) => println!("ERROR: {e}"),
            }
            if timing {
                println!("Time: {:.2?}", started.elapsed());
            }
        }
        prompt(&buffer);
    }
}

enum Command {
    Quit,
    Continue,
}

fn handle_command(
    db: &Database,
    cmd: &str,
    timing: &mut bool,
    json_profiles: &mut bool,
) -> Command {
    match cmd.split_whitespace().next().unwrap_or("") {
        "\\q" | "\\quit" => return Command::Quit,
        "\\d" => {
            for name in db.catalog().table_names() {
                let rows = db.catalog().get(&name).map(|t| t.row_count()).unwrap_or(0);
                println!("{name} ({rows} rows)");
            }
        }
        "\\stats" => println!("{}", db.take_stats()),
        "\\timing" => {
            *timing = !*timing;
            println!("timing {}", if *timing { "on" } else { "off" });
        }
        "\\json" => {
            *json_profiles = !*json_profiles;
            println!(
                "EXPLAIN ANALYZE output: {}",
                if *json_profiles { "json" } else { "text" }
            );
        }
        "\\gen" => {
            let result = db.execute_script(
                "DROP TABLE IF EXISTS edges;
                 CREATE TABLE edges (src INT, dst INT, weight FLOAT);
                 INSERT INTO edges VALUES
                     (1,2,1.0),(2,3,1.0),(3,4,1.0),(4,5,1.0),(5,1,1.0),
                     (1,3,2.0),(2,4,2.0),(3,5,2.0),(4,1,2.0),(5,2,2.0);",
            );
            match result {
                Ok(_) => println!("demo graph loaded into 'edges' (10 edges, 5 nodes)"),
                Err(e) => println!("ERROR: {e}"),
            }
        }
        other => {
            println!("unknown command '{other}' (try \\d, \\stats, \\timing, \\json, \\gen, \\q)")
        }
    }
    Command::Continue
}

fn prompt(buffer: &str) {
    print!(
        "{}",
        if buffer.is_empty() {
            "spinner> "
        } else {
            "    ...> "
        }
    );
    let _ = std::io::stdout().flush();
}
