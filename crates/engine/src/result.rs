//! Statement results.

use spinner_common::{Batch, Error, Result};

/// Outcome of executing one SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// A query returned rows.
    Rows(Batch),
    /// DML touched this many rows.
    Affected { rows: usize },
    /// DDL completed.
    Ddl,
    /// EXPLAIN output (the paper-Table-I style step rendering plus the
    /// final plan tree).
    Explain(String),
}

impl QueryResult {
    /// Unwrap as a row batch; errors for non-query statements.
    pub fn into_rows(self) -> Result<Batch> {
        match self {
            QueryResult::Rows(b) => Ok(b),
            other => Err(Error::execution(format!(
                "statement did not return rows: {other:?}"
            ))),
        }
    }

    /// Number of affected rows for DML, `None` otherwise.
    pub fn affected(&self) -> Option<usize> {
        match self {
            QueryResult::Affected { rows } => Some(*rows),
            _ => None,
        }
    }
}
