//! Statement results.

use spinner_common::{Batch, Error, QueryProfile, Result};

/// Outcome of executing one SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// A query returned rows.
    Rows(Batch),
    /// DML touched this many rows.
    Affected {
        /// Number of rows inserted, updated or deleted.
        rows: usize,
    },
    /// DDL completed.
    Ddl,
    /// EXPLAIN output (the paper-Table-I style step rendering plus the
    /// final plan tree).
    Explain(String),
    /// `EXPLAIN ANALYZE` output: the statement was executed and profiled.
    /// Render with [`QueryProfile::render`] or serialize with
    /// [`QueryProfile::to_json`].
    Analyze(QueryProfile),
}

impl QueryResult {
    /// Unwrap as a row batch; errors for non-query statements.
    pub fn into_rows(self) -> Result<Batch> {
        match self {
            QueryResult::Rows(b) => Ok(b),
            other => Err(Error::execution(format!(
                "statement did not return rows: {other:?}"
            ))),
        }
    }

    /// Number of affected rows for DML, `None` otherwise.
    pub fn affected(&self) -> Option<usize> {
        match self {
            QueryResult::Affected { rows } => Some(*rows),
            _ => None,
        }
    }
}
