//! # spinner-engine — the DBSpinner reproduction's public API
//!
//! An in-process analytical SQL engine with **native iterative CTEs**
//! (`WITH ITERATIVE ... ITERATE ... UNTIL ...`), reproducing *DBSpinner:
//! Making a Case for Iterative Processing in Databases* (ICDE 2021).
//!
//! ```
//! use spinner_engine::Database;
//!
//! let db = Database::default();
//! db.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)").unwrap();
//! db.execute("INSERT INTO edges VALUES (1, 2, 1.0), (2, 3, 1.0)").unwrap();
//! let batch = db.query(
//!     "WITH ITERATIVE t (k, v) AS (
//!          SELECT src, 1 FROM edges WHERE src = 1
//!      ITERATE
//!          SELECT k, v * 2 FROM t
//!      UNTIL 3 ITERATIONS)
//!      SELECT v FROM t").unwrap();
//! assert_eq!(batch.rows()[0][0], spinner_common::Value::Int(8));
//! ```
//!
//! The engine models a shared-nothing MPP system: tables are hash-
//! partitioned over `EngineConfig::partitions` virtual workers, joins and
//! aggregations insert exchange operators, and [`Database::take_stats`]
//! exposes how many rows crossed partition boundaries — the quantity the
//! paper's rename optimization (Fig. 8) saves.

#![warn(missing_docs)]

pub mod database;
pub mod restart;
pub mod result;
pub mod session;

pub use database::Database;
pub use restart::{AdoptedInput, AdoptedQuery, AdoptionReport, ResumedSummary};
pub use result::QueryResult;
pub use session::Session;

pub use spinner_common::{
    AdmissionController, AdmissionPermit, AdmissionProfile, AdmissionSnapshot, Batch, DataType,
    EngineConfig, Error, ErrorClass, FaultConfig, FaultKind, FaultSite, FaultTrigger, Field,
    IterationProfile, MemoryGate, ProfileNode, QueryClass, QueryGuard, QueryProfile,
    RecoveryPolicy, RecoveryProfile, RestartProfile, Result, Row, Schema, Value,
};
pub use spinner_exec::stats::StatsSnapshot;
