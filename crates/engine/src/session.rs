//! Per-connection sessions over a shared [`Database`].
//!
//! A [`Session`] is what the server front-end hands each TCP connection
//! (and what embedders use for multi-tenant access): it owns the
//! connection's guardrail *overrides* and the handle to its currently
//! running query, while the `Database` stays the single shared engine.
//! Statements executed through a session get a fresh [`QueryGuard`]
//! built from the engine config's defaults overlaid with the session's
//! `SET SESSION` overrides, and the guard is published in the session so
//! another thread — the connection reader that just saw EOF, an admin —
//! can [`Session::cancel_current`] it. Per-statement temp state needs no
//! session plumbing: statements own their `StatementState` wholesale, so
//! two sessions (or two statements racing on one session) can never see
//! each other's intermediates.
//!
//! Session commands (parsed here, before SQL):
//!
//! * `SET SESSION <KNOB> = <value>` — override a guardrail for this
//!   session only; knobs: `TIMEOUT_MS`, `MAX_ROWS_MATERIALIZED`,
//!   `MAX_ROWS_MOVED`, `MAX_INTERMEDIATE_BYTES`.
//! * `RESET SESSION <KNOB>` — drop one override; `RESET SESSION ALL`
//!   drops them all.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use spinner_common::{Error, QueryGuard, Result};

use crate::database::Database;
use crate::result::QueryResult;

/// Session-local guardrail overrides; `None` falls through to the engine
/// config's default for that knob.
#[derive(Debug, Clone, Copy, Default)]
struct Overrides {
    timeout_ms: Option<u64>,
    max_rows_materialized: Option<u64>,
    max_rows_moved: Option<u64>,
    max_intermediate_bytes: Option<u64>,
}

/// Monotonic session-id source, process-wide.
static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(1);

/// One client's view of a shared [`Database`]. See the module docs.
pub struct Session {
    db: Arc<Database>,
    id: u64,
    overrides: Mutex<Overrides>,
    /// Guard of the statement currently executing through this session,
    /// if any — the cancel handle for connection-drop teardown.
    current: Mutex<Option<Arc<QueryGuard>>>,
}

impl Session {
    /// New session over `db` with no overrides.
    pub fn new(db: Arc<Database>) -> Self {
        Session {
            db,
            id: NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed),
            overrides: Mutex::new(Overrides::default()),
            current: Mutex::new(None),
        }
    }

    /// This session's process-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The shared database this session runs against.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    fn overrides(&self) -> std::sync::MutexGuard<'_, Overrides> {
        // Plain-Copy state: recovery from poison cannot observe a tear.
        self.overrides.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Build the guard one statement will run under: engine-config
    /// defaults overlaid with this session's `SET SESSION` overrides.
    pub fn build_guard(&self) -> QueryGuard {
        let o = *self.overrides();
        let mut guard = QueryGuard::from_config(self.db.config());
        if let Some(ms) = o.timeout_ms {
            guard = guard.with_timeout_ms(ms);
        }
        if let Some(n) = o.max_rows_materialized {
            guard = guard.with_max_rows_materialized(n);
        }
        if let Some(n) = o.max_rows_moved {
            guard = guard.with_max_rows_moved(n);
        }
        if let Some(n) = o.max_intermediate_bytes {
            guard = guard.with_max_intermediate_bytes(n);
        }
        guard
    }

    /// Execute one statement (or session command) on behalf of this
    /// session. The statement's guard is published as the session's
    /// current query for the duration, so [`Session::cancel_current`]
    /// from another thread aborts it cooperatively.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        if let Some(result) = self.try_session_command(sql)? {
            return Ok(result);
        }
        let guard = Arc::new(self.build_guard());
        {
            let mut current = self.current.lock().unwrap_or_else(|e| e.into_inner());
            *current = Some(Arc::clone(&guard));
        }
        let result = self.db.execute_with_guard(sql, &guard);
        {
            let mut current = self.current.lock().unwrap_or_else(|e| e.into_inner());
            *current = None;
        }
        result
    }

    /// Cooperatively cancel the query currently running through this
    /// session, if any; returns whether one was running. The cancel is
    /// sticky (the running statement fails with `Error::Cancelled` at
    /// its next guard check) but only affects that statement — the
    /// session itself stays usable.
    pub fn cancel_current(&self) -> bool {
        let current = self.current.lock().unwrap_or_else(|e| e.into_inner());
        match current.as_ref() {
            Some(guard) => {
                guard.cancel();
                true
            }
            None => false,
        }
    }

    /// Parse and apply `SET SESSION` / `RESET SESSION`, returning
    /// `Ok(Some(Ddl))` if `sql` was a session command, `Ok(None)` if it
    /// is ordinary SQL for the engine.
    fn try_session_command(&self, sql: &str) -> Result<Option<QueryResult>> {
        let trimmed = sql.trim().trim_end_matches(';').trim();
        let words: Vec<&str> = trimmed.split_whitespace().collect();
        let upper: Vec<String> = words.iter().map(|w| w.to_ascii_uppercase()).collect();
        if upper.len() >= 2 && upper[0] == "SET" && upper[1] == "SESSION" {
            // SET SESSION <KNOB> = <value>  (the '=' may be glued to
            // either side, so re-split on it).
            let rest = words[2..].join(" ");
            let mut parts = rest.splitn(2, '=');
            let knob = parts.next().unwrap_or("").trim().to_ascii_uppercase();
            let value = parts.next().map(str::trim).unwrap_or("");
            if knob.is_empty() || value.is_empty() {
                return Err(Error::unsupported(
                    "SET SESSION syntax: SET SESSION <KNOB> = <value>",
                ));
            }
            let parsed: u64 = value.parse().map_err(|_| {
                Error::unsupported(format!("SET SESSION {knob}: invalid value {value:?}"))
            })?;
            let mut o = self.overrides();
            match knob.as_str() {
                "TIMEOUT_MS" => o.timeout_ms = Some(parsed),
                "MAX_ROWS_MATERIALIZED" => o.max_rows_materialized = Some(parsed),
                "MAX_ROWS_MOVED" => o.max_rows_moved = Some(parsed),
                "MAX_INTERMEDIATE_BYTES" => o.max_intermediate_bytes = Some(parsed),
                other => {
                    return Err(Error::unsupported(format!(
                        "unknown session knob {other} (expected TIMEOUT_MS, \
                         MAX_ROWS_MATERIALIZED, MAX_ROWS_MOVED or MAX_INTERMEDIATE_BYTES)"
                    )))
                }
            }
            return Ok(Some(QueryResult::Ddl));
        }
        if upper.len() >= 3 && upper[0] == "RESET" && upper[1] == "SESSION" {
            let mut o = self.overrides();
            match upper[2].as_str() {
                "ALL" => *o = Overrides::default(),
                "TIMEOUT_MS" => o.timeout_ms = None,
                "MAX_ROWS_MATERIALIZED" => o.max_rows_materialized = None,
                "MAX_ROWS_MOVED" => o.max_rows_moved = None,
                "MAX_INTERMEDIATE_BYTES" => o.max_intermediate_bytes = None,
                other => {
                    return Err(Error::unsupported(format!(
                        "unknown session knob {other} (expected ALL, TIMEOUT_MS, \
                         MAX_ROWS_MATERIALIZED, MAX_ROWS_MOVED or MAX_INTERMEDIATE_BYTES)"
                    )))
                }
            }
            return Ok(Some(QueryResult::Ddl));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::EngineConfig;

    fn session() -> Session {
        let db = Arc::new(Database::default());
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        Session::new(db)
    }

    #[test]
    fn sessions_get_unique_ids_and_run_sql() {
        let s1 = session();
        let s2 = Session::new(Arc::clone(s1.database()));
        assert_ne!(s1.id(), s2.id());
        let rows = s1
            .execute("SELECT COUNT(*) FROM t")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows.rows()[0][0].as_i64().unwrap(), 3);
    }

    #[test]
    fn set_session_overrides_guardrails_per_session() {
        let s = session();
        s.execute("SET SESSION MAX_ROWS_MATERIALIZED = 1").unwrap();
        let err = s
            .execute(
                "WITH ITERATIVE x (v) AS (SELECT a FROM t \
                 ITERATE SELECT v + 1 FROM x UNTIL 3 ITERATIONS) SELECT * FROM x",
            )
            .unwrap_err();
        assert!(
            matches!(err, Error::ResourceExhausted { .. }),
            "expected budget trip, got {err:?}"
        );
        // A sibling session on the same database is unaffected.
        let other = Session::new(Arc::clone(s.database()));
        other.execute("SELECT * FROM t").unwrap();
        // RESET restores the default (unlimited here).
        s.execute("RESET SESSION MAX_ROWS_MATERIALIZED").unwrap();
        s.execute("SELECT * FROM t").unwrap();
    }

    #[test]
    fn set_session_timeout_applies() {
        let s = session();
        s.execute("SET SESSION TIMEOUT_MS = 60000").unwrap();
        // The override reaches the guard, and the statement runs fine
        // well under the deadline.
        assert!(s.build_guard().check().is_ok());
        s.execute("SELECT COUNT(*) FROM t").unwrap();
        s.execute("RESET SESSION ALL").unwrap();
    }

    #[test]
    fn malformed_session_commands_are_rejected() {
        let s = session();
        assert!(s.execute("SET SESSION TIMEOUT_MS").is_err());
        assert!(s.execute("SET SESSION TIMEOUT_MS = abc").is_err());
        assert!(s.execute("SET SESSION NO_SUCH_KNOB = 1").is_err());
        assert!(s.execute("RESET SESSION NO_SUCH_KNOB").is_err());
        // Ordinary SQL still flows through to the parser.
        assert!(s.execute("SET x = 1").is_err());
    }

    #[test]
    fn cancel_current_aborts_a_running_query() {
        let db = Arc::new(Database::new(EngineConfig::default()).unwrap());
        db.execute("CREATE TABLE seed (v INT)").unwrap();
        db.execute("INSERT INTO seed VALUES (1)").unwrap();
        let s = Arc::new(Session::new(db));
        assert!(!s.cancel_current(), "nothing running yet");
        let runner = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                // Effectively unbounded loop; only the cancel stops it.
                s.execute(
                    "WITH ITERATIVE x (v) AS (SELECT v FROM seed \
                     ITERATE SELECT v + 1 FROM x UNTIL 100000000 ITERATIONS) \
                     SELECT COUNT(*) FROM x",
                )
            })
        };
        // Wait for the query to publish its guard, then cancel it.
        loop {
            if s.cancel_current() {
                break;
            }
            std::thread::yield_now();
        }
        let err = runner.join().unwrap().unwrap_err();
        assert!(matches!(err, Error::Cancelled), "got {err:?}");
        // The session survives its cancelled statement.
        let rows = s
            .execute("SELECT COUNT(*) FROM seed")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows.rows()[0][0].as_i64().unwrap(), 1);
    }
}
