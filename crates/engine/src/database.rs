//! The `Database` façade: parse → plan → optimize → execute.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use spinner_common::memory::SpillFaultHook;
use spinner_common::{
    AdmissionController, AdmissionPermit, AdmissionProfile, Batch, DurabilityProfile, EngineConfig,
    Error, FaultSite, MemoryGate, PoolProfile, QueryClass, QueryGuard, QueryProfile,
    RestartProfile, Result, Row, Schema, SchemaRef, SpillProfile, Tracer, Value,
};
use spinner_exec::stats::StatsSnapshot;
use spinner_exec::{ExecStats, Executor, FaultInjector, JoinStateCache, WorkerPool};
use spinner_parser::{parse_sql, parse_statements, Statement};
use spinner_plan::builder::SchemaProvider;
use spinner_plan::{plan_statement, LogicalPlan, PlanExpr, PlannedStatement, QueryPlan};
use spinner_storage::{
    Catalog, CheckpointStore, InputRecord, JournalEntry, QueryJournal, ResumeSeed, SpillEnv,
    SpillHandle, TempRegistry,
};

use crate::restart::{self, AdoptedQuery, AdoptionReport, ResumedSummary};

/// An in-process DBSpinner database instance.
///
/// Thread-compatible: wrap in `Arc` to share across sessions. Statements
/// own their execution state (temp registry, loop checkpoints), so
/// concurrent queries never observe — or clear — each other's
/// intermediate results; catalog access uses internal locks.
/// Configuration changes (`set_config`) still require `&mut self`.
pub struct Database {
    catalog: Catalog,
    config: EngineConfig,
    /// `Arc`'d so the spill fault hook can share them with the spill
    /// manager; everything else borrows them as before.
    stats: Arc<ExecStats>,
    /// Chaos-testing fault injector, rebuilt whenever the config changes.
    /// Disabled (zero overhead beyond an emptiness check) by default.
    faults: Arc<FaultInjector>,
    /// Memory accountant + spill manager, built when the config sets
    /// `spill_threshold_bytes` and installed into every statement's
    /// temp registry and checkpoint store. `None` preserves the
    /// fail-fast budget semantics.
    spill: Option<Arc<SpillEnv>>,
    /// Persistent worker pool (one thread per partition), created once
    /// when the config enables `parallel_partitions` + `worker_pool` and
    /// shared by every statement — parallel operators dispatch tasks to
    /// it instead of spawning threads. `None` = spawn-per-operator.
    pool: Option<Arc<WorkerPool>>,
    /// Global admission controller, built when the config sets
    /// `max_concurrent_queries`. Every plan-executing statement acquires
    /// an [`AdmissionPermit`] before touching the executor; `None`
    /// (the default) admits everything immediately.
    admission: Option<Arc<AdmissionController>>,
    /// Query journal for crash-consistent resumption, present when the
    /// config enables `resumable_queries`. Iterative statements register
    /// here before their first checkpoint; a clean shutdown deletes the
    /// file, a hard kill leaves it for the next process's adoption pass.
    journal: Option<Arc<QueryJournal>>,
    /// Adoption report from the startup scan: queries rehydrated from a
    /// dead engine's journal, waiting for [`Database::resume_adopted`],
    /// plus what was skipped and why.
    adoption: Mutex<AdoptionReport>,
    /// Results of resumed queries, keyed by their stable (pre-crash)
    /// handle, held for a reconnecting client's ATTACH. One-shot: the
    /// attach takes the result out.
    resumed: Mutex<HashMap<u64, super::QueryResult>>,
    /// Next stable query handle. Starts past the highest adopted handle
    /// so handles stay unique across the restart.
    next_query_id: AtomicU64,
    /// Handle issued to the statement most recently journaled on each
    /// thread — the server pops it (connections are single-threaded) to
    /// send the client its TAG_HANDLE frame.
    last_handles: Mutex<HashMap<std::thread::ThreadId, u64>>,
}

/// Journaling/resume context of one statement, threaded from the SQL
/// entry points down to plan execution. `Default` = a plain statement:
/// no journal entry, no resume seed.
#[derive(Default)]
struct ExecCtx<'a> {
    /// Raw SQL to journal when the plan is iterative and the engine is
    /// resumable. `None` for inner plans (INSERT sources, UPDATE FROM)
    /// and script statements, which are never adopted.
    sql: Option<&'a str>,
    /// Adopted resume: (stable query id, loop key, seed). The seed is
    /// primed into the statement's checkpoint store for the loop driver.
    resume: Option<(u64, String, ResumeSeed)>,
}

/// Per-statement execution state: the temp-result registry and loop-
/// checkpoint store a single statement runs against. Statements *own*
/// their state — nothing is shared or cleared across statements — so
/// concurrent sessions on one `Database` can never race on each other's
/// working tables, and a faulted statement structurally cannot leak
/// intermediate state (dropping the state also deletes any spill files
/// its entries held).
struct StatementState {
    temp: TempRegistry,
    checkpoints: CheckpointStore,
    /// Loop-invariant join builds cached for this statement only: the
    /// cache key is buffer identity in this statement's own registry, so
    /// sharing across statements would never hit anyway.
    join_cache: JoinStateCache,
}

/// Routes the spill manager's fault sites (`SpillWrite`/`SpillRead`)
/// through the engine's chaos-testing injector, so spill I/O composes
/// with the fault matrix like every other pipeline site. Lives here (not
/// in storage) because storage cannot depend on the exec crate's
/// injector — the manager only sees the [`SpillFaultHook`] trait.
#[derive(Debug)]
struct EngineSpillHook {
    faults: Arc<FaultInjector>,
    stats: Arc<ExecStats>,
}

impl SpillFaultHook for EngineSpillHook {
    fn hit(&self, site: FaultSite) -> Result<()> {
        self.faults.hit(site, &self.stats)
    }
}

/// Adapts the engine's spill environment to the admission controller's
/// [`MemoryGate`]: admission defers (rather than admits-then-spills) when
/// tracked intermediate state is already over the spill threshold. Lives
/// here because `spinner-common` cannot see the storage crate's
/// [`SpillEnv`].
#[derive(Debug)]
struct SpillMemoryGate(Arc<SpillEnv>);

impl MemoryGate for SpillMemoryGate {
    fn over_threshold(&self) -> bool {
        self.0.accountant.over_threshold()
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new(EngineConfig::default()).expect("default config is valid")
    }
}

struct CatalogProvider<'a>(&'a Catalog);

impl SchemaProvider for CatalogProvider<'_> {
    fn table_schema(&self, name: &str) -> Option<SchemaRef> {
        self.0.get(name).ok().map(|t| Arc::clone(t.schema()))
    }

    fn table_primary_key(&self, name: &str) -> Option<usize> {
        self.0.get(name).ok().and_then(|t| t.primary_key())
    }
}

impl Database {
    /// New database with the given configuration.
    ///
    /// Fails with [`Error::InvalidConfig`] when the configuration is
    /// inconsistent (zero partitions, zero timeout, malformed fault
    /// plans — see [`EngineConfig::validate`]).
    pub fn new(config: EngineConfig) -> Result<Self> {
        config.validate()?;
        let mut db = Database {
            catalog: Catalog::new(),
            config: EngineConfig::default(),
            stats: Arc::new(ExecStats::new()),
            faults: Arc::new(FaultInjector::disabled()),
            spill: None,
            pool: None,
            admission: None,
            journal: None,
            adoption: Mutex::new(AdoptionReport::default()),
            resumed: Mutex::new(HashMap::new()),
            next_query_id: AtomicU64::new(1),
            last_handles: Mutex::new(HashMap::new()),
        };
        db.install_config(config);
        Ok(db)
    }

    /// Install a validated config: rebuild the fault injector and the
    /// spill environment handed to each statement's execution state.
    /// With `resumable_queries` on, this is also where restart recovery
    /// happens: dead engines' journals are scanned and rehydrated into
    /// memory *before* orphan GC deletes their files.
    fn install_config(&mut self, config: EngineConfig) {
        self.faults = Arc::new(FaultInjector::from_config(&config));
        // Resumable queries need the durable spill machinery even when no
        // memory threshold is set: an effectively-infinite threshold gives
        // checkpoints a sealed on-disk home without ever spilling for
        // memory pressure.
        let threshold = config
            .spill_threshold_bytes
            .or(config.resumable_queries.then_some(u64::MAX));
        self.journal = None;
        self.spill = threshold.map(|threshold| {
            let hook: Arc<dyn SpillFaultHook> = Arc::new(EngineSpillHook {
                faults: Arc::clone(&self.faults),
                stats: Arc::clone(&self.stats),
            });
            let env = Arc::new(
                SpillEnv::new(threshold, config.spill_dir.as_deref(), Some(hook))
                    .with_durable(config.durable_spill || config.resumable_queries),
            );
            env
        });
        if config.resumable_queries {
            if let (Some(env), Some(dir)) = (&self.spill, config.spill_dir.as_deref()) {
                // Adopt-by-read: rehydrate dead engines' journaled queries
                // into memory first, so the GC below can stay simple — by
                // the time it deletes a dead pid's files, everything worth
                // keeping is already off disk.
                let report = restart::scan(std::path::Path::new(dir), &config);
                let max_id = report
                    .adopted
                    .iter()
                    .map(|q| q.query_id)
                    .chain(report.skipped.iter().map(|(id, _)| *id))
                    .max()
                    .unwrap_or(0);
                self.next_query_id
                    .store(max_id + 1, std::sync::atomic::Ordering::Relaxed);
                *self.adoption.lock().unwrap_or_else(|e| e.into_inner()) = report;
                self.journal = Some(Arc::new(QueryJournal::new(
                    std::path::Path::new(dir),
                    env.manager.tag(),
                    true,
                )));
            }
        }
        if let Some(env) = &self.spill {
            // Startup recovery: reclaim spill/manifest/journal files left
            // in this directory by crashed processes before writing our
            // own. Runs after adoption has read what it needs.
            env.manager.recover_orphans();
        }
        // The pool is created here — once per (re)configuration, never
        // mid-statement — so steady-state loop iterations spawn nothing.
        // Reconfiguring drops the old pool (joining its workers).
        self.pool = (config.parallel_partitions && config.worker_pool).then(|| {
            Arc::new(WorkerPool::with_stall_timeout(
                config.partitions,
                config.pool_stall_timeout_ms,
            ))
        });
        self.admission = config.max_concurrent_queries.map(|max| {
            let gate = self
                .spill
                .as_ref()
                .map(|env| Arc::new(SpillMemoryGate(Arc::clone(env))) as Arc<dyn MemoryGate>);
            Arc::new(AdmissionController::new(
                max,
                config.admission_queue_limit,
                config.admission_timeout_ms,
                config.admission_batch_timeout_ms,
                gate,
            ))
        });
        self.config = config;
    }

    /// Fresh per-statement execution state, wired to the session's spill
    /// environment (shared accountant: concurrent statements contend for
    /// the same memory threshold, as they would for real memory).
    fn statement_state(&self) -> StatementState {
        let temp = TempRegistry::new();
        temp.set_spill(self.spill.clone());
        let checkpoints = CheckpointStore::new();
        checkpoints.set_spill(self.spill.clone());
        StatementState {
            temp,
            checkpoints,
            join_cache: JoinStateCache::new(),
        }
    }

    /// New database with every DBSpinner optimization disabled — the
    /// naive-rewrite baseline of the paper's experiments.
    pub fn naive() -> Self {
        Database::new(EngineConfig::naive()).expect("naive config is valid")
    }

    /// Current configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Replace the configuration (affects subsequent statements).
    /// Validates like [`Database::new`]; on error the old configuration
    /// is kept.
    pub fn set_config(&mut self, config: EngineConfig) -> Result<()> {
        config.validate()?;
        self.install_config(config);
        Ok(())
    }

    /// Replace only the recovery knobs (checkpoint interval, retry
    /// bounds, loop-recovery budget) of the current configuration.
    pub fn set_recovery_policy(&mut self, policy: spinner_common::RecoveryPolicy) -> Result<()> {
        let config = self.config.clone().with_recovery(policy);
        self.set_config(config)
    }

    /// The recovery knobs of the current configuration.
    pub fn recovery_policy(&self) -> spinner_common::RecoveryPolicy {
        self.config.recovery_policy()
    }

    /// Number of live entries in session-shared temp-result state.
    /// Always 0 between statements — and, since statements own their
    /// temp registries (created at entry, dropped on every exit path,
    /// taking any spill files with them), structurally 0 here: no
    /// intermediate state outlives the statement that made it, even
    /// after injected faults or tripped guardrails.
    pub fn temp_result_count(&self) -> usize {
        0
    }

    /// Direct catalog access (datagen loaders, tests).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The global admission controller, present when the config sets
    /// `max_concurrent_queries`. The server uses it for graceful drain
    /// (`begin_drain` + `wait_idle`) and observability; tests use its
    /// snapshot for the no-leaked-slots invariant.
    pub fn admission(&self) -> Option<&Arc<AdmissionController>> {
        self.admission.as_ref()
    }

    /// Bytes of intermediate state currently tracked as resident by the
    /// memory accountant (0 without a spill environment). Between
    /// statements this returns to its baseline — the leak checks assert
    /// exactly that.
    pub fn resident_tracked_bytes(&self) -> u64 {
        self.spill
            .as_ref()
            .map(|env| env.accountant.resident_bytes())
            .unwrap_or(0)
    }

    /// Number of regions the memory accountant currently tracks, resident
    /// or spilled (0 without a spill environment). Companion to
    /// [`Database::resident_tracked_bytes`] for leak checks.
    pub fn tracked_region_count(&self) -> usize {
        self.spill
            .as_ref()
            .map(|env| env.accountant.region_count())
            .unwrap_or(0)
    }

    /// Route a hit of `site` through the chaos-testing fault injector.
    /// Used by the server front-end for its `Accept`/`SessionRead`/
    /// `SessionWrite` sites, which fire outside any executor pipeline.
    pub fn inject_fault(&self, site: FaultSite) -> Result<()> {
        self.faults.hit(site, &self.stats)
    }

    /// Snapshot of the execution statistics.
    ///
    /// Counters are reset at the entry of every plan-executing statement
    /// (queries and DML — not DDL or plain `EXPLAIN`), so a snapshot
    /// describes the most recent such statement only. Work done by a
    /// failed or cancelled statement never leaks into the next
    /// statement's snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Snapshot and reset the execution statistics. See [`Database::stats`]
    /// for the per-statement semantics.
    pub fn take_stats(&self) -> StatsSnapshot {
        let snap = self.stats.snapshot();
        self.stats.reset();
        snap
    }

    /// Execute one SQL statement under the session-default guardrails
    /// (the config's `query_timeout_ms` and `max_*` budgets, unlimited
    /// unless set).
    pub fn execute(&self, sql: &str) -> Result<super::QueryResult> {
        self.execute_with_guard(sql, &QueryGuard::from_config(&self.config))
    }

    /// Execute one SQL statement under a caller-supplied [`QueryGuard`].
    ///
    /// Share the guard (e.g. via `Arc`) with another thread to cancel a
    /// running query, or build it with a tighter deadline/budget than
    /// the session defaults.
    pub fn execute_with_guard(&self, sql: &str, guard: &QueryGuard) -> Result<super::QueryResult> {
        let stmt = parse_sql(sql)?;
        self.execute_parsed(&stmt, guard, Some(sql))
    }

    /// Execute a `;`-separated script, returning each statement's result.
    /// Each statement gets a fresh session-default guard, so a
    /// `query_timeout_ms` budget applies per statement, not per script.
    /// Script statements are not journaled for restart resumption (their
    /// per-statement text is not tracked).
    pub fn execute_script(&self, sql: &str) -> Result<Vec<super::QueryResult>> {
        parse_statements(sql)?
            .iter()
            .map(|s| self.execute_parsed(s, &QueryGuard::from_config(&self.config), None))
            .collect()
    }

    /// Execute a query and return its rows (errors for DDL/DML).
    pub fn query(&self, sql: &str) -> Result<Batch> {
        self.execute(sql)?.into_rows()
    }

    /// [`Database::query`] under a caller-supplied [`QueryGuard`].
    pub fn query_with_guard(&self, sql: &str, guard: &QueryGuard) -> Result<Batch> {
        self.execute_with_guard(sql, guard)?.into_rows()
    }

    /// EXPLAIN a statement without executing it.
    pub fn explain(&self, sql: &str) -> Result<String> {
        match self.execute(&format!("EXPLAIN {sql}"))? {
            super::QueryResult::Explain(text) => Ok(text),
            _ => unreachable!("EXPLAIN always yields Explain"),
        }
    }

    /// `EXPLAIN ANALYZE`: execute the query and return its
    /// [`QueryProfile`] — per-step actual row counts, rows moved, timings
    /// and per-loop-iteration convergence metrics.
    pub fn explain_analyze(&self, sql: &str) -> Result<QueryProfile> {
        match self.execute(&format!("EXPLAIN ANALYZE {sql}"))? {
            super::QueryResult::Analyze(profile) => Ok(profile),
            _ => unreachable!("EXPLAIN ANALYZE always yields Analyze"),
        }
    }

    /// Physical EXPLAIN: the optimized step program with every logical
    /// fragment lowered to physical operators, showing the hash joins and
    /// the exchange (shuffle/gather/broadcast) operators the MPP planner
    /// inserted.
    pub fn explain_physical(&self, sql: &str) -> Result<String> {
        let stmt = parse_sql(sql)?;
        let provider = CatalogProvider(&self.catalog);
        let planned = plan_statement(&stmt, &provider, &self.config)?;
        let planned = spinner_optimizer::optimize_statement(planned, &self.config)?;
        let PlannedStatement::Query(plan) = planned else {
            return Err(Error::unsupported(
                "physical EXPLAIN is only available for queries",
            ));
        };
        let mut out = String::new();
        let mut step_no = 1;
        explain_physical_steps(&plan.steps, &mut step_no, 0, &mut out, &self.config)?;
        out.push_str(&format!("{step_no}. Return:\n"));
        let phys = spinner_exec::create_physical_plan(&plan.root, &self.config)?;
        phys.display_indent(2, &mut out);
        Ok(out)
    }

    /// Bulk-load a table programmatically (used by the dataset generators;
    /// far faster than millions of INSERT statements).
    pub fn create_table_from_rows(
        &self,
        name: &str,
        schema: Schema,
        rows: Vec<Row>,
        primary_key: Option<usize>,
        partition_key: Option<usize>,
    ) -> Result<usize> {
        self.catalog.create_table(
            name,
            Arc::new(schema),
            self.config.partitions,
            partition_key.or(primary_key).or(Some(0)),
            primary_key,
        )?;
        self.catalog.with_table_mut(name, |t| t.insert(rows))
    }

    fn execute_parsed(
        &self,
        stmt: &Statement,
        guard: &QueryGuard,
        sql: Option<&str>,
    ) -> Result<super::QueryResult> {
        let provider = CatalogProvider(&self.catalog);
        let planned = plan_statement(stmt, &provider, &self.config)?;
        let planned = spinner_optimizer::optimize_statement(planned, &self.config)?;
        self.execute_planned(
            planned,
            guard,
            ExecCtx {
                sql,
                ..ExecCtx::default()
            },
        )
    }

    fn execute_planned(
        &self,
        planned: PlannedStatement,
        guard: &QueryGuard,
        ctx: ExecCtx<'_>,
    ) -> Result<super::QueryResult> {
        // Stats are per plan-executing statement: reset at entry so work
        // done by a previous failed/cancelled statement cannot leak into
        // this statement's snapshot. DDL and plain EXPLAIN execute no
        // plan and leave the last statement's counters readable.
        let executes_plan = matches!(
            planned,
            PlannedStatement::Query(_)
                | PlannedStatement::Insert { .. }
                | PlannedStatement::Update { .. }
                | PlannedStatement::Delete { .. }
                | PlannedStatement::Explain { analyze: true, .. }
        );
        // Admission gates exactly the plan-executing statements: DDL and
        // plain EXPLAIN touch no executor resources. The permit is RAII —
        // held for the rest of this function, released (waking the next
        // queued query) on every exit path including errors and panics.
        let permit: Option<AdmissionPermit> = match (&self.admission, executes_plan) {
            (Some(ctrl), true) => Some(ctrl.admit(admission_class(&planned))?),
            _ => None,
        };
        if executes_plan {
            self.stats.reset();
        }
        if let Some(p) = &permit {
            use std::sync::atomic::Ordering;
            self.stats
                .admission_waited_us
                .store(p.waited_us(), Ordering::Relaxed);
            self.stats
                .admission_queue_depth
                .store(p.queue_depth(), Ordering::Relaxed);
        }
        let tracer = Tracer::disabled();
        match planned {
            PlannedStatement::Query(plan) => {
                let batch = self.run_query_plan_ctx(&plan, guard, &tracer, ctx)?;
                Ok(super::QueryResult::Rows(batch))
            }
            PlannedStatement::Explain {
                statement,
                analyze: false,
            } => Ok(super::QueryResult::Explain(explain_planned(&statement))),
            PlannedStatement::Explain {
                statement,
                analyze: true,
            } => {
                let PlannedStatement::Query(plan) = *statement else {
                    return Err(Error::unsupported(
                        "EXPLAIN ANALYZE is only available for queries",
                    ));
                };
                let tracer = Tracer::new();
                self.run_query_plan_ctx(&plan, guard, &tracer, ctx)?;
                let mut profile = tracer.finish();
                // Spill and scheduling counters live in flat stats
                // (drained per statement), not in spans; graft them onto
                // the profile.
                let snap = self.stats.snapshot();
                profile.spill = SpillProfile {
                    events: snap.spill_events,
                    bytes_written: snap.spill_bytes_written,
                    bytes_read: snap.spill_bytes_read,
                    peak_tracked_bytes: snap.peak_tracked_bytes,
                };
                profile.pool = PoolProfile {
                    threads_spawned: snap.threads_spawned,
                    pool_tasks: snap.pool_tasks,
                    join_builds: snap.join_builds,
                    join_builds_reused: snap.join_builds_reused,
                };
                if let Some(ctrl) = &self.admission {
                    profile.admission = AdmissionProfile {
                        waited_ms: snap.admission_waited_us / 1000,
                        queue_depth: snap.admission_queue_depth,
                        shed: ctrl.snapshot().shed_total(),
                    };
                }
                profile.durability = DurabilityProfile {
                    epochs: snap.durability_epochs,
                    verified: snap.durability_verified,
                    corrupt_detected: snap.durability_corrupt,
                    refsync: snap.durability_fsyncs,
                };
                profile.restart = RestartProfile {
                    adopted_epoch: snap.restart_adopted_epoch,
                    resumed_iteration: snap.restart_resumed_iteration,
                    replayed_iterations: snap.restart_replayed_iterations,
                };
                Ok(super::QueryResult::Analyze(profile))
            }
            PlannedStatement::CreateTable {
                name,
                schema,
                primary_key,
                partition_key,
                if_not_exists,
            } => {
                let result = self.catalog.create_table(
                    &name,
                    Arc::new(schema),
                    self.config.partitions,
                    partition_key,
                    primary_key,
                );
                match result {
                    Err(Error::TableExists(_)) if if_not_exists => Ok(super::QueryResult::Ddl),
                    Err(e) => Err(e),
                    Ok(()) => Ok(super::QueryResult::Ddl),
                }
            }
            PlannedStatement::DropTable { name, if_exists } => {
                match self.catalog.drop_table(&name) {
                    Err(Error::TableNotFound(_)) if if_exists => Ok(super::QueryResult::Ddl),
                    Err(e) => Err(e),
                    Ok(()) => Ok(super::QueryResult::Ddl),
                }
            }
            PlannedStatement::Insert { table, source } => {
                let batch = self.run_query_plan(&source, guard, &tracer)?;
                let rows = batch.into_rows();
                let n = self.catalog.with_table_mut(&table, |t| t.insert(rows))?;
                Ok(super::QueryResult::Affected { rows: n })
            }
            PlannedStatement::Update {
                table,
                from,
                assignments,
                predicate,
            } => {
                let n = self.run_update(&table, from, &assignments, predicate.as_ref(), guard)?;
                Ok(super::QueryResult::Affected { rows: n })
            }
            PlannedStatement::Delete { table, predicate } => {
                let n = self.catalog.with_table_mut(&table, |t| {
                    t.delete_where(|row| match &predicate {
                        Some(p) => p.matches(row),
                        None => Ok(true),
                    })
                })?;
                Ok(super::QueryResult::Affected { rows: n })
            }
        }
    }

    fn run_query_plan(
        &self,
        plan: &QueryPlan,
        guard: &QueryGuard,
        tracer: &Tracer,
    ) -> Result<Batch> {
        self.run_query_plan_ctx(plan, guard, tracer, ExecCtx::default())
    }

    fn run_query_plan_ctx(
        &self,
        plan: &QueryPlan,
        guard: &QueryGuard,
        tracer: &Tracer,
        ctx: ExecCtx<'_>,
    ) -> Result<Batch> {
        let state = self.statement_state();
        let mut forced_id = None;
        if let Some((query_id, loop_key, seed)) = ctx.resume {
            state.checkpoints.prime_resume(&loop_key, seed);
            forced_id = Some(query_id);
        }
        // Keep the input-snapshot handles alive for the whole statement:
        // dropping them (with the journal entry finished below) deletes
        // the files, while a crash leaks them for the adoption pass.
        let _input_handles = self.begin_statement_journal(&state, plan, ctx.sql, forced_id);
        let exec = Executor {
            catalog: &self.catalog,
            registry: &state.temp,
            config: &self.config,
            stats: &self.stats,
            guard,
            faults: &self.faults,
            tracer,
            checkpoints: &state.checkpoints,
            pool: self.pool.as_deref(),
            join_cache: &state.join_cache,
        };
        let result = exec.run_query(plan);
        // Release on every exit path: a cancelled/faulted query must not
        // leave partial working tables or stale loop checkpoints behind.
        // Clearing releases the accountant's regions and deletes this
        // statement's remaining spill files (their handles drop with the
        // entries); `state` itself drops at scope end.
        state.temp.clear();
        state.checkpoints.clear();
        state.join_cache.clear();
        self.drain_spill_metrics();
        result
    }

    /// If this statement is journalable — resumable engine, raw SQL known,
    /// plan contains a loop — write durable input-table snapshots, record
    /// the journal entry, and attach the journal to the statement's
    /// checkpoint store so every committed epoch lands in it. Returns the
    /// snapshot handles the caller must keep alive for the statement.
    /// Best-effort: any failure here simply leaves the statement
    /// non-resumable; it never fails the query.
    fn begin_statement_journal(
        &self,
        state: &StatementState,
        plan: &QueryPlan,
        sql: Option<&str>,
        forced_id: Option<u64>,
    ) -> Vec<SpillHandle> {
        let (Some(journal), Some(env), Some(sql)) = (&self.journal, &self.spill, sql) else {
            return Vec::new();
        };
        let Some(loop_key) = plan_loop_key(plan) else {
            return Vec::new();
        };
        // Snapshot every base table to sealed files so adoption can
        // recreate the catalog the statement planned against. (The repro's
        // catalogs are small; a selective plan-referenced-only snapshot is
        // a future refinement.)
        let mut inputs = Vec::new();
        let mut handles = Vec::new();
        for name in self.catalog.table_names() {
            let Ok(table) = self.catalog.get(&name) else {
                continue;
            };
            let data = table.snapshot();
            match env
                .manager
                .write_partitioned(&format!("input_{name}"), &data)
            {
                Ok(handle) => {
                    inputs.push(InputRecord {
                        table: name.clone(),
                        file: handle
                            .path()
                            .file_name()
                            .map(|n| n.to_string_lossy().into_owned())
                            .unwrap_or_default(),
                        primary_key: table.primary_key(),
                        partition_key: table.partition_key(),
                    });
                    handles.push(handle);
                }
                // Without a complete input set the entry could never be
                // adopted faithfully; skip journaling this statement.
                Err(_) => return Vec::new(),
            }
        }
        let query_id =
            forced_id.unwrap_or_else(|| self.next_query_id.fetch_add(1, Ordering::Relaxed));
        self.last_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(std::thread::current().id(), query_id);
        journal.begin(JournalEntry {
            query_id,
            sql: sql.to_string(),
            settings: restart::settings_overlay(&self.config),
            loop_key,
            epochs: Vec::new(),
            inputs,
        });
        state.checkpoints.set_journal(Arc::clone(journal), query_id);
        handles
    }

    /// Stable handle issued to the last statement this thread journaled,
    /// if any (one-shot). See [`Database::take_handle_for`].
    pub fn take_last_handle(&self) -> Option<u64> {
        self.take_handle_for(std::thread::current().id())
    }

    /// Stable handle issued to the statement the given thread is
    /// journaling (one-shot). The handle is published at statement
    /// *start*, so a server can poll from a sibling thread and send it
    /// to the client while the statement still runs — the client must
    /// hold the handle before any crash for reconnect-and-attach to
    /// work.
    pub fn take_handle_for(&self, thread: std::thread::ThreadId) -> Option<u64> {
        self.last_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&thread)
    }

    /// Resume every query adopted by the startup scan: recreate its input
    /// tables, re-plan its SQL, seed the loop from the adopted checkpoint
    /// and run it to completion. Results are parked for
    /// [`Database::take_resumed_result`]; failures are appended to the
    /// skipped list with a reason. Returns one summary per resumed query.
    pub fn resume_adopted(&self) -> Vec<ResumedSummary> {
        let adopted: Vec<AdoptedQuery> = {
            let mut report = self.adoption.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut report.adopted)
        };
        let mut summaries = Vec::new();
        for query in adopted {
            let query_id = query.query_id;
            match self.resume_one(query) {
                Ok(summary) => summaries.push(summary),
                Err(e) => self
                    .adoption
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .skipped
                    .push((query_id, format!("resume failed: {e}"))),
            }
        }
        summaries
    }

    fn resume_one(&self, query: AdoptedQuery) -> Result<ResumedSummary> {
        for input in &query.inputs {
            if !self.catalog.contains(&input.table) {
                self.catalog.create_table(
                    &input.table,
                    Arc::clone(&input.data.schema),
                    self.config.partitions,
                    input.partition_key.or(input.primary_key).or(Some(0)),
                    input.primary_key,
                )?;
                self.catalog
                    .with_table_mut(&input.table, |t| t.insert(input.data.gather()))?;
            }
        }
        let stmt = parse_sql(&query.sql)?;
        let provider = CatalogProvider(&self.catalog);
        let planned = plan_statement(&stmt, &provider, &self.config)?;
        let planned = spinner_optimizer::optimize_statement(planned, &self.config)?;
        // The checkpointed tables are keyed by the dead engine's internal
        // CTE names; temp-name allocation is deterministic per statement,
        // so a re-plan of the same SQL under the same settings reproduces
        // them. Verify rather than trust.
        let replanned_key = planned_loop_key(&planned);
        if replanned_key.as_deref() != Some(query.loop_key.as_str()) {
            return Err(Error::execution(format!(
                "re-planned loop key {:?} does not match journaled '{}'",
                replanned_key, query.loop_key
            )));
        }
        let guard = QueryGuard::from_config(&self.config);
        let result = self.execute_planned(
            planned,
            &guard,
            ExecCtx {
                sql: Some(&query.sql),
                resume: Some((query.query_id, query.loop_key.clone(), query.seed.clone())),
            },
        )?;
        // The re-journaled statement published its (pre-crash) handle for
        // this thread; the resumed result is parked under the same id, so
        // the per-thread slot is just leftover state here.
        let _ = self.take_last_handle();
        let snap = self.stats.snapshot();
        let rows = match &result {
            super::QueryResult::Rows(batch) => batch.len() as u64,
            _ => 0,
        };
        self.resumed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(query.query_id, result);
        Ok(ResumedSummary {
            query_id: query.query_id,
            adopted_epoch: snap.restart_adopted_epoch,
            resumed_iteration: snap.restart_resumed_iteration,
            replayed_iterations: snap.restart_replayed_iterations,
            rows,
        })
    }

    /// Take the parked result of a resumed query (one-shot — the frame is
    /// sent once). [`Error::UnknownHandle`] if the handle was never
    /// issued, already fetched, or not adopted across the restart.
    pub fn take_resumed_result(&self, query_id: u64) -> Result<super::QueryResult> {
        self.resumed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&query_id)
            .ok_or(Error::UnknownHandle { handle: query_id })
    }

    /// Journal entries the adoption pass could not resume, with reasons
    /// (observability; also fed by [`Database::resume_adopted`] failures).
    pub fn adoption_skipped(&self) -> Vec<(u64, String)> {
        self.adoption
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .skipped
            .clone()
    }

    /// Number of adopted queries still waiting for
    /// [`Database::resume_adopted`].
    pub fn adoption_pending(&self) -> usize {
        self.adoption
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .adopted
            .len()
    }

    /// Fold the spill subsystem's counters for the finished statement into
    /// the per-statement [`ExecStats`]. The accountant/manager metrics are
    /// drained (swap-to-zero), so each statement reports only its own
    /// spill activity.
    fn drain_spill_metrics(&self) {
        use std::sync::atomic::Ordering;
        let Some(env) = &self.spill else { return };
        let c = env.metrics().drain();
        self.stats
            .spill_events
            .fetch_add(c.spill_events, Ordering::Relaxed);
        self.stats
            .spill_bytes_written
            .fetch_add(c.spill_bytes_written, Ordering::Relaxed);
        self.stats
            .spill_bytes_read
            .fetch_add(c.spill_bytes_read, Ordering::Relaxed);
        self.stats
            .peak_tracked_bytes
            .fetch_max(c.peak_tracked_bytes, Ordering::Relaxed);
        self.stats
            .durability_epochs
            .fetch_add(c.durable_epochs, Ordering::Relaxed);
        self.stats
            .durability_verified
            .fetch_add(c.verified_reads, Ordering::Relaxed);
        self.stats
            .durability_corrupt
            .fetch_add(c.corrupt_detected, Ordering::Relaxed);
        self.stats
            .durability_fsyncs
            .fetch_add(c.fsyncs, Ordering::Relaxed);
    }

    /// UPDATE [FROM]: when a FROM clause is present, equi-conjuncts of the
    /// WHERE clause are used to hash-index the FROM result so the per-row
    /// probe is O(1) — the shape the SQLoop middleware baseline relies on
    /// (`UPDATE main SET ... FROM intermediate WHERE main.key = i.key`).
    fn run_update(
        &self,
        table: &str,
        from: Option<LogicalPlan>,
        assignments: &[(usize, PlanExpr)],
        predicate: Option<&PlanExpr>,
        guard: &QueryGuard,
    ) -> Result<usize> {
        let table_handle = self.catalog.get(table)?;
        let table_schema = Arc::clone(table_handle.schema());
        let table_width = table_schema.len();
        let column_types: Vec<_> = table_schema.fields().iter().map(|f| f.data_type).collect();

        let apply = |combined: &[Value]| -> Result<Row> {
            let mut new_row: Vec<Value> = combined[..table_width].to_vec();
            for (idx, expr) in assignments {
                new_row[*idx] = expr.evaluate(combined)?.cast(column_types[*idx])?;
            }
            Ok(new_row.into_boxed_slice())
        };

        match from {
            None => self.catalog.with_table_mut(table, |t| {
                t.update_where(|row| {
                    let hit = match predicate {
                        Some(p) => p.matches(row)?,
                        None => true,
                    };
                    Ok(if hit { Some(apply(row)?) } else { None })
                })
            }),
            Some(from_plan) => {
                let tracer = Tracer::disabled();
                let state = self.statement_state();
                let exec = Executor {
                    catalog: &self.catalog,
                    registry: &state.temp,
                    config: &self.config,
                    stats: &self.stats,
                    guard,
                    faults: &self.faults,
                    tracer: &tracer,
                    checkpoints: &state.checkpoints,
                    pool: self.pool.as_deref(),
                    join_cache: &state.join_cache,
                };
                let from_result = exec.execute_logical(&from_plan);
                state.temp.clear();
                state.join_cache.clear();
                self.drain_spill_metrics();
                let from_rows: Vec<Row> = from_result?.gather();
                // Split the WHERE clause into hashable equi conjuncts
                // (table expr = from expr) and a residual.
                let mut table_keys: Vec<PlanExpr> = Vec::new();
                let mut from_keys: Vec<PlanExpr> = Vec::new();
                let mut residual: Vec<PlanExpr> = Vec::new();
                if let Some(p) = predicate {
                    let mut conjuncts = Vec::new();
                    split_conjuncts(p, &mut conjuncts);
                    for c in conjuncts {
                        match as_update_equi(&c, table_width) {
                            Some((tk, fk)) => {
                                table_keys.push(tk);
                                from_keys.push(fk);
                            }
                            None => residual.push(c),
                        }
                    }
                }
                // Index the FROM rows by their key tuple.
                let mut index: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
                let mut all: Vec<&Row> = Vec::new();
                if table_keys.is_empty() {
                    all = from_rows.iter().collect();
                } else {
                    for fr in &from_rows {
                        let key: Vec<Value> = from_keys
                            .iter()
                            .map(|k| k.evaluate(fr))
                            .collect::<Result<_>>()?;
                        if key.iter().any(Value::is_null) {
                            continue;
                        }
                        index.entry(key).or_default().push(fr);
                    }
                }
                self.catalog.with_table_mut(table, |t| {
                    t.update_where(|row| {
                        let candidates: Vec<&Row> = if table_keys.is_empty() {
                            all.clone()
                        } else {
                            let key: Vec<Value> = table_keys
                                .iter()
                                .map(|k| k.evaluate(row))
                                .collect::<Result<_>>()?;
                            if key.iter().any(Value::is_null) {
                                return Ok(None);
                            }
                            match index.get(&key) {
                                Some(v) => v.clone(),
                                None => return Ok(None),
                            }
                        };
                        for fr in candidates {
                            let mut combined: Vec<Value> =
                                Vec::with_capacity(table_width + fr.len());
                            combined.extend_from_slice(row);
                            combined.extend_from_slice(fr);
                            let hit = residual.iter().try_fold(true, |acc, p| {
                                Ok::<bool, Error>(acc && p.matches(&combined)?)
                            })?;
                            if hit {
                                // First match wins (PostgreSQL-style
                                // nondeterminism made deterministic).
                                return Ok(Some(apply(&combined)?));
                            }
                        }
                        Ok(None)
                    })
                })
            }
        }
    }
}

/// Internal CTE name of the first loop operator in a query plan's step
/// program, if any — the identity the journal and checkpoint store key on.
fn plan_loop_key(plan: &QueryPlan) -> Option<String> {
    fn find(steps: &[spinner_plan::Step]) -> Option<String> {
        for step in steps {
            match step {
                spinner_plan::Step::Loop(l) => return Some(l.cte.clone()),
                _ => continue,
            }
        }
        None
    }
    find(&plan.steps)
}

/// [`plan_loop_key`] lifted over a whole planned statement (descends into
/// EXPLAIN ANALYZE so a resumed analyze round-trips its restart block).
fn planned_loop_key(planned: &PlannedStatement) -> Option<String> {
    match planned {
        PlannedStatement::Query(plan) => plan_loop_key(plan),
        PlannedStatement::Explain {
            analyze: true,
            statement,
            ..
        } => planned_loop_key(statement),
        _ => None,
    }
}

/// Scheduling class of a planned statement for admission control: any
/// statement whose plan contains a loop operator is `Batch` (iterative
/// work runs long, so it gets the batch admission timeout); everything
/// else is `Interactive`.
fn admission_class(planned: &PlannedStatement) -> QueryClass {
    fn plan_is_batch(plan: &QueryPlan) -> bool {
        plan.steps
            .iter()
            .any(|s| matches!(s, spinner_plan::Step::Loop(_)))
    }
    match planned {
        PlannedStatement::Query(plan) => {
            if plan_is_batch(plan) {
                QueryClass::Batch
            } else {
                QueryClass::Interactive
            }
        }
        PlannedStatement::Insert { source, .. } => {
            if plan_is_batch(source) {
                QueryClass::Batch
            } else {
                QueryClass::Interactive
            }
        }
        PlannedStatement::Explain { statement, .. } => admission_class(statement),
        _ => QueryClass::Interactive,
    }
}

/// Render the step program with physical (lowered) plan fragments.
fn explain_physical_steps(
    steps: &[spinner_plan::Step],
    step_no: &mut usize,
    indent: usize,
    out: &mut String,
    config: &spinner_common::EngineConfig,
) -> Result<()> {
    use spinner_plan::Step;
    let pad = "  ".repeat(indent);
    for step in steps {
        match step {
            Step::Materialize { name, plan, .. } => {
                out.push_str(&format!("{pad}{step_no}. Materialize {name} with:\n"));
                *step_no += 1;
                let phys = spinner_exec::create_physical_plan(plan, config)?;
                phys.display_indent(indent + 2, out);
            }
            Step::Rename { from, to } => {
                out.push_str(&format!("{pad}{step_no}. Rename {from} to {to}.\n"));
                *step_no += 1;
            }
            Step::Merge {
                cte,
                working,
                merged,
                key,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}{step_no}. Merge {working} into {cte} by key #{key} -> {merged} \
                     (hash exchange both sides on the key).\n"
                ));
                *step_no += 1;
            }
            Step::Loop(l) => {
                out.push_str(&format!(
                    "{pad}{step_no}. Initialize loop operator {} for {}.\n",
                    l.termination, l.cte_display_name
                ));
                *step_no += 1;
                let loop_start = *step_no;
                explain_physical_steps(&l.body, step_no, indent + 1, out, config)?;
                out.push_str(&format!(
                    "{pad}{step_no}. Go to step {loop_start} if loop condition holds.\n"
                ));
                *step_no += 1;
            }
        }
    }
    Ok(())
}

/// Render an EXPLAIN for any planned statement.
fn explain_planned(planned: &PlannedStatement) -> String {
    match planned {
        PlannedStatement::Query(q) => q.explain(),
        PlannedStatement::Insert { table, source } => {
            format!("Insert into {table}:\n{}", source.explain())
        }
        PlannedStatement::Update { table, .. } => format!("Update {table}"),
        PlannedStatement::Delete { table, .. } => format!("Delete from {table}"),
        PlannedStatement::CreateTable { name, .. } => format!("Create table {name}"),
        PlannedStatement::DropTable { name, .. } => format!("Drop table {name}"),
        PlannedStatement::Explain { statement, .. } => explain_planned(statement),
    }
}

fn split_conjuncts(expr: &PlanExpr, out: &mut Vec<PlanExpr>) {
    use spinner_plan::expr::BinaryOp;
    if let PlanExpr::Binary {
        left,
        op: BinaryOp::And,
        right,
    } = expr
    {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(expr.clone());
    }
}

/// If `expr` is `a = b` with `a` over table columns (< width) and `b` over
/// FROM columns (>= width) or vice versa, return (table key, from key with
/// indices rebased to the FROM row).
fn as_update_equi(expr: &PlanExpr, table_width: usize) -> Option<(PlanExpr, PlanExpr)> {
    use spinner_plan::expr::BinaryOp;
    let PlanExpr::Binary {
        left,
        op: BinaryOp::Eq,
        right,
    } = expr
    else {
        return None;
    };
    let lcols = left.referenced_columns();
    let rcols = right.referenced_columns();
    if lcols.is_empty() || rcols.is_empty() {
        return None;
    }
    let table_side = |cols: &[usize]| cols.iter().all(|&c| c < table_width);
    let from_side = |cols: &[usize]| cols.iter().all(|&c| c >= table_width);
    if table_side(&lcols) && from_side(&rcols) {
        let fk = right.remap_columns(&|i| i.checked_sub(table_width)).ok()?;
        return Some(((**left).clone(), fk));
    }
    if table_side(&rcols) && from_side(&lcols) {
        let fk = left.remap_columns(&|i| i.checked_sub(table_width)).ok()?;
        return Some(((**right).clone(), fk));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryResult;

    fn db_with_edges() -> Database {
        let db = Database::default();
        db.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
            .unwrap();
        // Cyclic so every node has an incoming edge (like the SNAP
        // datasets the paper uses — PR's LEFT JOIN degrades to NULL ranks
        // on sources with no in-edges, which is faithful SQL semantics).
        db.execute(
            "INSERT INTO edges VALUES (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (1, 3, 5.0), \
             (4, 1, 1.0)",
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let db = db_with_edges();
        let batch = db.query("SELECT COUNT(*) FROM edges").unwrap();
        assert_eq!(batch.rows()[0][0], Value::Int(5));
    }

    #[test]
    fn insert_casts_to_declared_types() {
        let db = db_with_edges();
        db.execute("INSERT INTO edges VALUES (9, 9, 2)").unwrap(); // 2 (INT) -> FLOAT
        let batch = db.query("SELECT weight FROM edges WHERE src = 9").unwrap();
        assert_eq!(batch.rows()[0][0], Value::Float(2.0));
    }

    #[test]
    fn update_plain() {
        let db = db_with_edges();
        let r = db
            .execute("UPDATE edges SET weight = weight * 2 WHERE src = 1")
            .unwrap();
        assert_eq!(r.affected(), Some(2));
        let batch = db
            .query("SELECT SUM(weight) FROM edges WHERE src = 1")
            .unwrap();
        assert_eq!(batch.rows()[0][0], Value::Float(12.0));
    }

    #[test]
    fn update_with_from_uses_key_match() {
        let db = db_with_edges();
        db.execute("CREATE TABLE fix (node INT, w FLOAT)").unwrap();
        db.execute("INSERT INTO fix VALUES (2, 100.0)").unwrap();
        let r = db
            .execute("UPDATE edges SET weight = fix.w FROM fix WHERE edges.src = fix.node")
            .unwrap();
        assert_eq!(r.affected(), Some(1));
        let batch = db.query("SELECT weight FROM edges WHERE src = 2").unwrap();
        assert_eq!(batch.rows()[0][0], Value::Float(100.0));
    }

    #[test]
    fn delete_removes_rows() {
        let db = db_with_edges();
        let r = db.execute("DELETE FROM edges WHERE weight > 2.0").unwrap();
        assert_eq!(r.affected(), Some(1));
        assert_eq!(
            db.query("SELECT COUNT(*) FROM edges").unwrap().rows()[0][0],
            Value::Int(4)
        );
    }

    #[test]
    fn drop_table_and_if_exists() {
        let db = db_with_edges();
        db.execute("DROP TABLE edges").unwrap();
        assert!(db.execute("DROP TABLE edges").is_err());
        assert_eq!(
            db.execute("DROP TABLE IF EXISTS edges").unwrap(),
            QueryResult::Ddl
        );
    }

    #[test]
    fn create_if_not_exists_is_idempotent() {
        let db = db_with_edges();
        assert!(db.execute("CREATE TABLE edges (x INT)").is_err());
        db.execute("CREATE TABLE IF NOT EXISTS edges (x INT)")
            .unwrap();
    }

    #[test]
    fn explain_shows_loop_operator() {
        let db = db_with_edges();
        let text = db
            .explain(
                "WITH ITERATIVE t (k, v) AS (
                     SELECT src, 0 FROM edges
                 ITERATE SELECT k, v + 1 FROM t
                 UNTIL 10 ITERATIONS)
                 SELECT * FROM t",
            )
            .unwrap();
        assert!(text.contains("Initialize loop operator"));
        assert!(text.contains("Type:metadata"));
        assert!(text.contains("Rename"));
    }

    #[test]
    fn explain_physical_shows_exchanges() {
        let db = db_with_edges();
        let text = db
            .explain_physical(
                "SELECT e1.src, COUNT(*) FROM edges e1 JOIN edges e2 ON e1.dst = e2.src \
                 GROUP BY e1.src",
            )
            .unwrap();
        assert!(text.contains("HashJoin"), "{text}");
        assert!(text.contains("Exchange: Hash"), "{text}");
        assert!(text.contains("SeqScan: edges"), "{text}");
    }

    #[test]
    fn explain_physical_shows_loop_program() {
        let db = db_with_edges();
        let text = db
            .explain_physical(
                "WITH ITERATIVE t (k, v) AS (SELECT src, 0 FROM edges \
                 ITERATE SELECT k, v + 1 FROM t UNTIL 2 ITERATIONS) SELECT * FROM t",
            )
            .unwrap();
        assert!(text.contains("Initialize loop operator"), "{text}");
        assert!(text.contains("TempScan"), "{text}");
        assert!(text.contains("Rename"), "{text}");
    }

    #[test]
    fn explain_physical_rejects_dml() {
        let db = db_with_edges();
        assert!(matches!(
            db.explain_physical("DELETE FROM edges"),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let db = db_with_edges();
        db.query("SELECT src FROM edges ORDER BY src").unwrap();
        let s = db.take_stats();
        assert!(s.rows_moved > 0 || s.rows_materialized == 0);
        let s2 = db.stats();
        assert_eq!(s2.rows_moved, 0);
    }

    #[test]
    fn stats_describe_the_last_statement_only() {
        let db = db_with_edges();
        db.query(
            "WITH ITERATIVE t (k, v) AS (SELECT 1, 0 \
             ITERATE SELECT k, v + 1 FROM t UNTIL 5 ITERATIONS) SELECT * FROM t",
        )
        .unwrap();
        // A second query resets the counters at entry; its snapshot must
        // not include the first query's 5 iterations.
        db.query("SELECT COUNT(*) FROM edges").unwrap();
        assert_eq!(db.stats().iterations, 0);
    }

    #[test]
    fn stats_from_failed_statement_do_not_leak() {
        // Regression: a statement that fails mid-loop used to leave its
        // counters behind, polluting the next statement's snapshot.
        let mut db = db_with_edges();
        db.set_config(EngineConfig::default().with_max_iterations(7))
            .unwrap();
        let err = db
            .query(
                "WITH ITERATIVE t (k, v) AS (SELECT 1, 0 \
                 ITERATE SELECT k, v + 1 FROM t UNTIL (v < 0)) SELECT * FROM t",
            )
            .unwrap_err();
        assert!(matches!(err, Error::IterationLimitExceeded { .. }));
        assert!(db.stats().iterations > 0, "failed run did iterate");
        // The next clean statement's snapshot covers only itself.
        db.query("SELECT COUNT(*) FROM edges").unwrap();
        let s = db.take_stats();
        assert_eq!(s.iterations, 0);
        assert_eq!(s.renames, 0);
    }

    #[test]
    fn ddl_and_plain_explain_keep_the_last_snapshot_readable() {
        let db = db_with_edges();
        db.query(
            "WITH ITERATIVE t (k, v) AS (SELECT 1, 0 \
             ITERATE SELECT k, v + 1 FROM t UNTIL 3 ITERATIONS) SELECT * FROM t",
        )
        .unwrap();
        // Neither DDL nor EXPLAIN executes a plan; both leave the last
        // query's counters in place for inspection.
        db.execute("CREATE TABLE scratch (x INT)").unwrap();
        db.explain("SELECT * FROM edges").unwrap();
        assert_eq!(db.stats().iterations, 3);
    }

    #[test]
    fn explain_analyze_profiles_iterative_query() {
        let db = db_with_edges();
        let profile = db
            .explain_analyze(
                "WITH ITERATIVE t (k, v) AS (SELECT src, 0 FROM edges \
                 ITERATE SELECT k, v + 1 FROM t UNTIL 4 ITERATIONS) SELECT * FROM t",
            )
            .unwrap();
        let loops = profile.loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].iterations.len(), 4);
        assert!(profile.find("Return").is_some());
        // The profile round-trips through JSON.
        let back = spinner_common::QueryProfile::from_json(&profile.to_json()).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn explain_analyze_rejects_ddl() {
        let db = db_with_edges();
        assert!(matches!(
            db.execute("EXPLAIN ANALYZE CREATE TABLE t2 (x INT)"),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn script_execution() {
        let db = Database::default();
        let results = db
            .execute_script(
                "CREATE TABLE t (a INT);
                 INSERT INTO t VALUES (1), (2);
                 SELECT COUNT(*) FROM t;",
            )
            .unwrap();
        assert_eq!(results.len(), 3);
        let QueryResult::Rows(b) = &results[2] else {
            panic!()
        };
        assert_eq!(b.rows()[0][0], Value::Int(2));
    }

    #[test]
    fn pagerank_full_query_runs() {
        let db = db_with_edges();
        // Figure 2 of the paper, scaled to the toy graph.
        let batch = db
            .query(
                "WITH ITERATIVE PageRank (Node, Rank, Delta)
                 AS ( SELECT src, 0, 0.15
                      FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
                  ITERATE
                   SELECT PageRank.node,
                     PageRank.rank + PageRank.delta,
                     0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
                   FROM PageRank
                     LEFT JOIN edges AS IncomingEdges
                       ON PageRank.node = IncomingEdges.dst
                     LEFT JOIN PageRank AS IncomingRank
                       ON IncomingRank.node = IncomingEdges.src
                   GROUP BY PageRank.node,
                             PageRank.rank + PageRank.delta
                  UNTIL 10 ITERATIONS )
                 SELECT Node, Rank FROM PageRank ORDER BY Node",
            )
            .unwrap();
        assert_eq!(batch.len(), 4);
        // Every node accumulated a positive rank.
        for row in batch.rows() {
            assert!(row[1].as_f64().unwrap() > 0.0);
        }
    }

    #[test]
    fn sssp_full_query_runs() {
        let db = db_with_edges();
        // Figure 7 of the paper: shortest distance from node 1.
        let batch = db
            .query(
                "WITH ITERATIVE sssp (Node, Distance, Delta)
                 AS (SELECT src, 9999999, CASE WHEN src = 1 THEN 0 ELSE 9999999 END
                     FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
                  ITERATE
                    SELECT sssp.node,
                      LEAST(sssp.distance, sssp.delta),
                      COALESCE(MIN(IncomingDistance.delta + IncomingEdges.weight), 9999999)
                    FROM sssp
                     LEFT JOIN edges AS IncomingEdges ON sssp.node = IncomingEdges.dst
                     LEFT JOIN sssp AS IncomingDistance ON
                         IncomingDistance.node = IncomingEdges.src
                    WHERE IncomingDistance.Delta != 9999999
                    GROUP BY sssp.node, LEAST(sssp.distance, sssp.delta)
                  UNTIL 10 ITERATIONS)
                 SELECT Distance FROM sssp WHERE Node = 4",
            )
            .unwrap();
        // 1 -> 2 -> 3 -> 4 with weight 1 each = 3 (vs 1 -> 3 (5.0) -> 4 = 6).
        assert_eq!(batch.rows()[0][0].as_f64().unwrap(), 3.0);
    }

    #[test]
    fn admission_disabled_by_default_and_enabled_by_config() {
        let db = db_with_edges();
        assert!(db.admission().is_none());
        let db = Database::new(EngineConfig::default().with_max_concurrent_queries(2)).unwrap();
        let ctrl = db.admission().expect("admission on");
        assert_eq!(ctrl.max_concurrent(), 2);
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.query("SELECT * FROM t").unwrap();
        let snap = db.admission().unwrap().snapshot();
        // DDL is not gated; the two DML/queries each took (and released)
        // a permit.
        assert_eq!(snap.admitted_total, 2);
        assert_eq!(snap.active, 0, "permits released after each statement");
        assert_eq!(snap.queued, 0);
    }

    #[test]
    fn concurrent_queries_beyond_the_cap_queue_or_shed() {
        let db = Arc::new(
            Database::new(
                EngineConfig::default()
                    .with_max_concurrent_queries(1)
                    .with_admission_queue_limit(0),
            )
            .unwrap(),
        );
        db.execute("CREATE TABLE seed (v INT)").unwrap();
        db.execute("INSERT INTO seed VALUES (1)").unwrap();
        // Hold the only slot with a long iterative query on another
        // thread, then observe this thread's query being shed.
        let started = std::sync::mpsc::channel::<()>();
        let runner = {
            let db = Arc::clone(&db);
            let tx = started.0;
            std::thread::spawn(move || {
                tx.send(()).unwrap();
                db.query(
                    "WITH ITERATIVE x (v) AS (SELECT v FROM seed \
                     ITERATE SELECT v + 1 FROM x UNTIL 2000 ITERATIONS) \
                     SELECT COUNT(*) FROM x",
                )
            })
        };
        started.1.recv().unwrap();
        // Wait until the runner actually holds the slot.
        while db.admission().unwrap().snapshot().active == 0 {
            if runner.is_finished() {
                break;
            }
            std::thread::yield_now();
        }
        let mut shed = false;
        while !runner.is_finished() {
            match db.query("SELECT COUNT(*) FROM seed") {
                Err(Error::Overloaded { limit, .. }) => {
                    assert_eq!(limit, 0);
                    shed = true;
                    break;
                }
                Ok(_) | Err(_) => std::thread::yield_now(),
            }
        }
        runner.join().unwrap().unwrap();
        if shed {
            assert!(db.admission().unwrap().snapshot().shed_overloaded >= 1);
        }
        // Slots always drain back to zero.
        assert_eq!(db.admission().unwrap().snapshot().active, 0);
    }

    #[test]
    fn explain_analyze_surfaces_admission_profile() {
        let db = Database::new(
            EngineConfig::default()
                .with_max_concurrent_queries(2)
                .with_admission_queue_limit(4),
        )
        .unwrap();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let profile = db.explain_analyze("SELECT * FROM t").unwrap();
        // Fast-path admit on an idle engine: all-zero, omitted from JSON
        // (byte-compatible with admission-off profiles).
        assert!(profile.admission.is_empty());
        assert!(!profile.to_json().contains("\"admission\""));
    }

    #[test]
    fn optimizations_do_not_change_results() {
        let sql = "WITH ITERATIVE t (k, v) AS (
                 SELECT DISTINCT src, src * 10 FROM edges
             ITERATE SELECT k, v + 1 FROM t
             UNTIL 5 ITERATIONS)
             SELECT k, v FROM t WHERE MOD(k, 2) = 0 ORDER BY k";
        let optimized = db_with_edges();
        let mut naive = db_with_edges();
        naive.set_config(EngineConfig::naive()).unwrap();
        let b1 = optimized.query(sql).unwrap();
        let b2 = naive.query(sql).unwrap();
        assert_eq!(b1.rows(), b2.rows());
    }
}
