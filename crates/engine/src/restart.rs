//! Restart recovery: adopting a dead engine's in-flight queries.
//!
//! When a process is hard-killed (SIGKILL, power loss), its [`QueryJournal`]
//! and the sealed checkpoint/input files it references survive under the
//! spill directory — destructors never ran. A fresh engine pointed at the
//! same directory runs this **adoption pass** before orphan GC:
//!
//! 1. **Scan** the directory for `spinner_journal_{pid}_{tag}.qjl` files
//!    whose owner pid is dead (`/proc/{pid}` gone). Live journals — another
//!    engine sharing the directory — are never touched.
//! 2. **Verify & read**: parse each journal (seal-checked; corruption is a
//!    typed [`StorageCorrupt`](spinner_common::Error::StorageCorrupt), not
//!    a guess), check the recorded planner-settings overlay against the
//!    adopting engine's config, and rehydrate the newest committed
//!    checkpoint epoch — falling back newest → previous when the newest
//!    file fails its checksums — plus the input-table snapshots. Everything
//!    is read **into memory here**, before GC deletes the dead files.
//! 3. **Re-plan & resume**: [`Database::resume_adopted`] re-plans the
//!    journaled SQL (CTE temp names are deterministic per statement, so the
//!    re-planned loop key matches the checkpointed one), primes the
//!    statement's checkpoint store with a [`ResumeSeed`], and executes it —
//!    the loop driver continues from the checkpointed iteration *k* instead
//!    of iteration 0.
//!
//! Anything that cannot be adopted — settings mismatch, every epoch
//! corrupt, inputs unreadable — is reported in
//! [`AdoptionReport::skipped`] with a reason and then falls through to the
//! ordinary orphan GC. Adoption never blocks startup on a judgment call.
//!
//! [`Database::resume_adopted`]: crate::Database::resume_adopted

use std::path::Path;

use spinner_common::EngineConfig;
use spinner_storage::{
    read_checkpoint_file, read_partitioned_file, JournalEntry, Partitioned, QueryJournal,
    ResumeSeed,
};

/// One rehydrated input-table snapshot an adopted query depends on.
#[derive(Debug, Clone)]
pub struct AdoptedInput {
    /// Catalog table name to recreate.
    pub table: String,
    /// The snapshot rows, already partitioned as the dead engine saw them.
    pub data: Partitioned,
    /// Primary-key column index the table declared, if any.
    pub primary_key: Option<usize>,
    /// Partition-key column index the table declared, if any.
    pub partition_key: Option<usize>,
}

/// One dead engine's in-flight query, fully rehydrated into memory and
/// ready to resume.
#[derive(Debug, Clone)]
pub struct AdoptedQuery {
    /// The stable query handle the dead engine had issued.
    pub query_id: u64,
    /// The journaled SQL text, re-planned verbatim.
    pub sql: String,
    /// The loop's internal CTE name the checkpoint is keyed by.
    pub loop_key: String,
    /// The adopted checkpoint plus its epoch/iteration provenance.
    pub seed: ResumeSeed,
    /// Input-table snapshots to recreate before re-planning.
    pub inputs: Vec<AdoptedInput>,
}

/// Outcome of the startup adoption scan.
#[derive(Debug, Clone, Default)]
pub struct AdoptionReport {
    /// Queries rehydrated and ready for [`resume_adopted`].
    ///
    /// [`resume_adopted`]: crate::Database::resume_adopted
    pub adopted: Vec<AdoptedQuery>,
    /// Entries that could not be adopted: `(query_id, reason)`.
    /// `query_id` 0 marks a journal file unreadable as a whole.
    pub skipped: Vec<(u64, String)>,
}

/// Summary of one successfully resumed query, for operator logs and the
/// crash harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumedSummary {
    /// The query's stable handle (unchanged across the restart).
    pub query_id: u64,
    /// Manifest epoch of the adopted checkpoint.
    pub adopted_epoch: u64,
    /// Iteration the loop driver was seeded with.
    pub resumed_iteration: u64,
    /// Crash-lost iterations the resumed run re-executed.
    pub replayed_iterations: u64,
    /// Rows in the resumed result (0 for non-row results).
    pub rows: u64,
}

/// The planner-affecting config overlay journaled with every resumable
/// statement. Adoption refuses entries whose overlay differs from the
/// live config: a different plan shape would not line up with the
/// checkpointed `__cte_*` / `__delta_*` names or partitioning.
pub fn settings_overlay(config: &EngineConfig) -> Vec<(String, String)> {
    [
        ("partitions", config.partitions.to_string()),
        (
            "minimize_data_movement",
            config.minimize_data_movement.to_string(),
        ),
        (
            "common_result_optimization",
            config.common_result_optimization.to_string(),
        ),
        ("predicate_pushdown", config.predicate_pushdown.to_string()),
        ("semi_naive", config.semi_naive.to_string()),
        ("general_rewrites", config.general_rewrites.to_string()),
        (
            "two_phase_aggregation",
            config.two_phase_aggregation.to_string(),
        ),
        ("max_iterations", config.max_iterations.to_string()),
        (
            "checkpoint_interval",
            config.checkpoint_interval.to_string(),
        ),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect()
}

/// Whether `pid` is a live process on this machine. Conservative: if the
/// liveness probe is unavailable the pid is treated as live, so adoption
/// (and the GC behind it) never races a running engine.
fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    #[cfg(target_os = "linux")]
    {
        Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        true
    }
}

/// Owner pid of a journal file name (`spinner_journal_{pid}_{tag}.qjl`).
fn journal_owner_pid(name: &str) -> Option<u32> {
    name.strip_prefix("spinner_journal_")?
        .strip_suffix(".qjl")?
        .split('_')
        .next()?
        .parse()
        .ok()
}

/// The adoption scan (steps 1–2 of the module docs): find dead-owner
/// journals under `dir`, verify them, and rehydrate everything adoptable
/// into memory. Pure read pass — deletes nothing; run it *before* orphan
/// GC so the files it reads still exist.
pub fn scan(dir: &Path, config: &EngineConfig) -> AdoptionReport {
    let mut report = AdoptionReport::default();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return report;
    };
    let mut journal_paths: Vec<_> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .and_then(journal_owner_pid)
                .is_some_and(|pid| !pid_alive(pid))
        })
        .collect();
    journal_paths.sort();
    let expected = settings_overlay(config);
    for path in journal_paths {
        match QueryJournal::load(&path) {
            Ok(entries) => {
                for entry in entries {
                    match adopt_entry(dir, &entry, &expected) {
                        Ok(q) => report.adopted.push(q),
                        Err(reason) => report.skipped.push((entry.query_id, reason)),
                    }
                }
            }
            Err(e) => report.skipped.push((0, format!("journal unreadable: {e}"))),
        }
    }
    // Overlapping dead engines can journal the same handle; keep the
    // first (lowest journal path) and skip the rest so one handle never
    // resumes twice.
    let mut seen = std::collections::HashSet::new();
    report.adopted.retain(|q| {
        let fresh = seen.insert(q.query_id);
        if !fresh {
            report.skipped.push((
                q.query_id,
                "duplicate handle in another dead journal".into(),
            ));
        }
        fresh
    });
    report
}

/// Rehydrate one journal entry, or explain why it cannot be adopted.
fn adopt_entry(
    dir: &Path,
    entry: &JournalEntry,
    expected: &[(String, String)],
) -> Result<AdoptedQuery, String> {
    if entry.settings != expected {
        return Err(format!(
            "planner settings changed since the crash (journaled {:?})",
            entry.settings
        ));
    }
    if entry.epochs.is_empty() {
        return Err("no committed checkpoint epoch to resume from".to_string());
    }
    // Newest epoch first; a corrupt file falls back to the previous one.
    let mut fallback_note = String::new();
    let mut adopted = None;
    for epoch in &entry.epochs {
        match read_checkpoint_file(&dir.join(&epoch.file), "adopt:checkpoint") {
            Ok(ckpt) => {
                adopted = Some((epoch.epoch, ckpt));
                break;
            }
            Err(e) => fallback_note = format!("; newest epoch unreadable: {e}"),
        }
    }
    let Some((adopted_epoch, checkpoint)) = adopted else {
        return Err(format!("every journaled epoch is corrupt{fallback_note}"));
    };
    let mut inputs = Vec::with_capacity(entry.inputs.len());
    for input in &entry.inputs {
        match read_partitioned_file(&dir.join(&input.file), "adopt:input") {
            Ok(data) => inputs.push(AdoptedInput {
                table: input.table.clone(),
                data,
                primary_key: input.primary_key,
                partition_key: input.partition_key,
            }),
            Err(e) => {
                return Err(format!("input snapshot '{}' unreadable: {e}", input.table));
            }
        }
    }
    Ok(AdoptedQuery {
        query_id: entry.query_id,
        sql: entry.sql.clone(),
        loop_key: entry.loop_key.clone(),
        seed: ResumeSeed {
            adopted_epoch,
            journal_iteration: entry.epochs[0].iteration,
            checkpoint,
        },
        inputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{row_of, DataType, Field, Schema, Value};
    use spinner_storage::{EpochRecord, InputRecord, LoopCheckpoint, SpillEnv, SpillHandle};
    use std::path::PathBuf;
    use std::sync::Arc;

    /// A pid that can never be live (beyond Linux's pid_max).
    const DEAD_PID: u32 = 999_999_999;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spinner_adopt_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_data() -> Partitioned {
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ]));
        let rows = vec![
            row_of([Value::Int(1), Value::Int(10)]),
            row_of([Value::Int(2), Value::Int(20)]),
        ];
        Partitioned::from_rows(schema, rows, Some(0), 2)
    }

    /// Write a sealed checkpoint + input snapshot and a dead-pid journal
    /// referencing them. Returns the spill env (keep alive: dropping it
    /// releases nothing here — handles are leaked on purpose, like a
    /// crash would) and the file names.
    fn stage_dead_engine(dir: &Path, query_id: u64) -> (Arc<SpillEnv>, Vec<SpillHandle>) {
        let env = Arc::new(SpillEnv::new(u64::MAX, dir.to_str(), None));
        let ckpt = LoopCheckpoint {
            iteration: 4,
            cumulative_updates: 7,
            tables: vec![("__cte_t_1".to_string(), sample_data())],
        };
        let ckpt_handle = env
            .manager
            .write_checkpoint("checkpoint:adopt", &ckpt)
            .unwrap();
        let input_handle = env
            .manager
            .write_partitioned("input_t", &sample_data())
            .unwrap();
        let file_name =
            |h: &SpillHandle| h.path().file_name().unwrap().to_string_lossy().into_owned();
        let journal = QueryJournal::for_pid(dir, DEAD_PID, 0, false);
        journal.begin(JournalEntry {
            query_id,
            sql: "SELECT 1".to_string(),
            settings: settings_overlay(&EngineConfig::default()),
            loop_key: "__cte_t_1".to_string(),
            epochs: vec![EpochRecord {
                epoch: 2,
                iteration: 4,
                file: file_name(&ckpt_handle),
            }],
            inputs: vec![InputRecord {
                table: "t".to_string(),
                file: file_name(&input_handle),
                primary_key: Some(0),
                partition_key: None,
            }],
        });
        // A crash never runs Drop: forget the journal so its file stays.
        std::mem::forget(journal);
        (env, vec![ckpt_handle, input_handle])
    }

    #[test]
    fn empty_directory_adopts_nothing() {
        let dir = temp_dir("empty");
        let report = scan(&dir, &EngineConfig::default());
        assert!(report.adopted.is_empty());
        assert!(report.skipped.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_pid_journal_is_adopted_with_checkpoint_and_inputs() {
        let dir = temp_dir("adopt");
        let (_env, handles) = stage_dead_engine(&dir, 11);
        let report = scan(&dir, &EngineConfig::default());
        assert_eq!(report.skipped, vec![]);
        assert_eq!(report.adopted.len(), 1);
        let q = &report.adopted[0];
        assert_eq!(q.query_id, 11);
        assert_eq!(q.loop_key, "__cte_t_1");
        assert_eq!(q.seed.adopted_epoch, 2);
        assert_eq!(q.seed.journal_iteration, 4);
        assert_eq!(q.seed.checkpoint.iteration, 4);
        assert_eq!(q.inputs.len(), 1);
        assert_eq!(q.inputs[0].data.total_rows(), 2);
        for h in handles {
            std::mem::forget(h); // crash semantics: files stay for GC tests
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_pid_journal_is_never_adopted() {
        let dir = temp_dir("live");
        // Journal owned by *this* (very alive) process.
        let journal = QueryJournal::new(&dir, 0, false);
        journal.begin(JournalEntry {
            query_id: 5,
            sql: "SELECT 1".to_string(),
            settings: settings_overlay(&EngineConfig::default()),
            loop_key: "__cte_t_1".to_string(),
            epochs: vec![],
            inputs: vec![],
        });
        let report = scan(&dir, &EngineConfig::default());
        assert!(report.adopted.is_empty());
        assert!(report.skipped.is_empty(), "live journals are invisible");
        drop(journal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_referencing_gcd_epoch_is_skipped_with_reason() {
        let dir = temp_dir("gcd");
        let journal = QueryJournal::for_pid(&dir, DEAD_PID, 1, false);
        journal.begin(JournalEntry {
            query_id: 9,
            sql: "SELECT 1".to_string(),
            settings: settings_overlay(&EngineConfig::default()),
            loop_key: "__cte_t_1".to_string(),
            epochs: vec![EpochRecord {
                epoch: 3,
                iteration: 6,
                file: "spinner_spill_999999999_0_5_checkpoint.spn".to_string(),
            }],
            inputs: vec![],
        });
        std::mem::forget(journal);
        let report = scan(&dir, &EngineConfig::default());
        assert!(report.adopted.is_empty());
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].0, 9);
        assert!(report.skipped[0].1.contains("epoch is corrupt"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn settings_mismatch_vetoes_adoption() {
        let dir = temp_dir("settings");
        let (_env, handles) = stage_dead_engine(&dir, 3);
        let changed = EngineConfig::default().with_partitions(7);
        let report = scan(&dir, &changed);
        assert!(report.adopted.is_empty());
        assert_eq!(report.skipped.len(), 1);
        assert!(report.skipped[0].1.contains("settings changed"));
        for h in handles {
            std::mem::forget(h);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_dead_journals_with_the_same_handle_adopt_once() {
        let dir = temp_dir("dup");
        let (_env_a, ha) = stage_dead_engine(&dir, 21);
        // Second dead engine journals the same query id under another tag.
        let (_env_b, hb) = {
            let env = Arc::new(SpillEnv::new(u64::MAX, dir.to_str(), None));
            let ckpt = LoopCheckpoint {
                iteration: 2,
                cumulative_updates: 1,
                tables: vec![("__cte_t_1".to_string(), sample_data())],
            };
            let h = env
                .manager
                .write_checkpoint("checkpoint:dup", &ckpt)
                .unwrap();
            let journal = QueryJournal::for_pid(&dir, DEAD_PID - 1, 9, false);
            journal.begin(JournalEntry {
                query_id: 21,
                sql: "SELECT 2".to_string(),
                settings: settings_overlay(&EngineConfig::default()),
                loop_key: "__cte_t_1".to_string(),
                epochs: vec![EpochRecord {
                    epoch: 1,
                    iteration: 2,
                    file: h.path().file_name().unwrap().to_string_lossy().into_owned(),
                }],
                inputs: vec![],
            });
            std::mem::forget(journal);
            (env, vec![h])
        };
        let report = scan(&dir, &EngineConfig::default());
        assert_eq!(report.adopted.len(), 1, "one resume per handle");
        assert_eq!(report.adopted[0].query_id, 21);
        assert!(report
            .skipped
            .iter()
            .any(|(id, r)| *id == 21 && r.contains("duplicate handle")));
        for h in ha.into_iter().chain(hb) {
            std::mem::forget(h);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
