//! # spinner-server — multi-session TCP front-end for the DBSpinner engine
//!
//! Turns the in-process [`spinner_engine::Database`] into a concurrent
//! network service: a length-prefixed SQL protocol over TCP, one
//! handler thread per connection, a [`spinner_engine::Session`] per
//! connection for guardrail overrides and cancellation, and the
//! engine's admission controller gating query start so overload is
//! shed with typed errors instead of queue collapse.
//!
//! ```no_run
//! use std::sync::Arc;
//! use std::time::Duration;
//! use spinner_engine::{Database, EngineConfig};
//! use spinner_server::{Client, Server};
//!
//! let config = EngineConfig::default().with_max_concurrent_queries(4);
//! let db = Arc::new(Database::new(config).unwrap());
//! let server = Server::start(Arc::clone(&db), "127.0.0.1:0").unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.query("CREATE TABLE t (a INT)").unwrap();
//! client.query("INSERT INTO t VALUES (1), (2)").unwrap();
//! let reply = client.query("SELECT COUNT(*) FROM t").unwrap();
//! assert_eq!(reply.scalar_i64(), Some(2));
//! client.close().unwrap();
//!
//! server.shutdown(Duration::from_secs(5));
//! ```
//!
//! See [`protocol`] for the wire format and the stable error-code
//! tokens, [`server`] for the connection lifecycle (watcher-based
//! connection-drop cancellation, graceful drain, chaos hooks), and
//! [`client`] for the blocking test/bench client.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ReconnectPolicy, Reply};
pub use server::Server;
