//! `spinner-serve` — stand up a spinner-server over a fresh database.
//!
//! ```text
//! spinner-serve [ADDR] [--max-concurrent N] [--queue-limit N]
//!               [--admission-timeout-ms N] [--partitions N]
//! ```
//!
//! Defaults: bind `127.0.0.1:5433`, admission cap 8, queue limit 16.
//! Runs until killed; connect with `spinner-client` or any program
//! speaking the length-prefixed protocol in `spinner_server::protocol`.

use std::process::ExitCode;
use std::sync::Arc;

use spinner_engine::{Database, EngineConfig};
use spinner_server::Server;

struct Options {
    addr: String,
    max_concurrent: usize,
    queue_limit: usize,
    admission_timeout_ms: Option<u64>,
    partitions: Option<usize>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:5433".to_string(),
        max_concurrent: 8,
        queue_limit: 16,
        admission_timeout_ms: None,
        partitions: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag_value = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--max-concurrent" => {
                opts.max_concurrent = flag_value("--max-concurrent")?
                    .parse()
                    .map_err(|_| "--max-concurrent: expected a positive integer".to_string())?;
            }
            "--queue-limit" => {
                opts.queue_limit = flag_value("--queue-limit")?
                    .parse()
                    .map_err(|_| "--queue-limit: expected a positive integer".to_string())?;
            }
            "--admission-timeout-ms" => {
                let v = flag_value("--admission-timeout-ms")?
                    .parse()
                    .map_err(|_| "--admission-timeout-ms: expected milliseconds".to_string())?;
                opts.admission_timeout_ms = Some(v);
            }
            "--partitions" => {
                let v = flag_value("--partitions")?
                    .parse()
                    .map_err(|_| "--partitions: expected a positive integer".to_string())?;
                opts.partitions = Some(v);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: spinner-serve [ADDR] [--max-concurrent N] [--queue-limit N] \
                     [--admission-timeout-ms N] [--partitions N]"
                        .to_string(),
                )
            }
            other if !other.starts_with('-') => opts.addr = other.to_string(),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut config = EngineConfig::default()
        .with_max_concurrent_queries(opts.max_concurrent)
        .with_admission_queue_limit(opts.queue_limit);
    if let Some(ms) = opts.admission_timeout_ms {
        config = config.with_admission_timeout_ms(ms);
    }
    if let Some(p) = opts.partitions {
        config = config.with_partitions(p);
    }
    let db = match Database::new(config) {
        Ok(db) => Arc::new(db),
        Err(e) => {
            eprintln!("engine start failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(db, opts.addr.as_str()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {} failed: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "spinner-server listening on {} (admission cap {}, queue limit {})",
        server.local_addr(),
        opts.max_concurrent,
        opts.queue_limit
    );
    // Serve until the process is killed; connection handling lives on
    // the server's own threads.
    loop {
        std::thread::park();
    }
}
