//! `spinner-serve` — stand up a spinner-server over a fresh database.
//!
//! ```text
//! spinner-serve [ADDR] [--max-concurrent N] [--queue-limit N]
//!               [--admission-timeout-ms N] [--partitions N]
//!               [--spill-dir DIR] [--resumable]
//!               [--checkpoint-interval N]
//!               [--crash-at SITE:N] [--corrupt-at SITE:N]
//! ```
//!
//! Defaults: bind `127.0.0.1:5433`, admission cap 8, queue limit 16.
//! Connect with `spinner-client` or any program speaking the
//! length-prefixed protocol in `spinner_server::protocol`.
//!
//! ## Lifecycle
//!
//! With `--resumable` (requires `--spill-dir`), in-flight iterative
//! statements are journaled; on startup the engine adopts any journal a
//! crashed predecessor left in the spill directory and resumes those
//! queries from their newest durable checkpoint, printing one
//! `resumed query <id>: ...` line per query before the listening line.
//! Reconnecting clients fetch the results via their stable handles.
//!
//! `SIGTERM`/`SIGINT` trigger a graceful drain: stop admitting, give
//! in-flight statements a grace period, close connections, exit 0 —
//! journal entries are finished, nothing is left to adopt. `SIGKILL`
//! is the crash path the journal exists for; `--crash-at SITE:N`
//! self-inflicts it deterministically at an engine fault site for the
//! crash harness, and `--corrupt-at SITE:N` injects adversarial disk
//! faults (torn write / bit flip) at one.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use spinner_engine::{Database, EngineConfig, FaultConfig, FaultSite};
use spinner_server::Server;

struct Options {
    addr: String,
    max_concurrent: usize,
    queue_limit: usize,
    admission_timeout_ms: Option<u64>,
    partitions: Option<usize>,
    spill_dir: Option<String>,
    resumable: bool,
    checkpoint_interval: Option<u64>,
    crash_at: Option<(FaultSite, u64)>,
    corrupt_at: Option<(FaultSite, u64)>,
}

/// Parse `SITE:N` for the fault-injection flags. Site names mirror the
/// engine's fault-site tokens in EXPLAIN ANALYZE / repro artifacts.
fn parse_fault_spec(flag: &str, spec: &str) -> Result<(FaultSite, u64), String> {
    let (site, nth) = spec
        .split_once(':')
        .ok_or_else(|| format!("{flag}: expected SITE:N, got '{spec}'"))?;
    let site = match site {
        "loop_iteration" => FaultSite::LoopIteration,
        "checkpoint" => FaultSite::Checkpoint,
        "spill_write" => FaultSite::SpillWrite,
        "spill_read" => FaultSite::SpillRead,
        "manifest_commit" => FaultSite::ManifestCommit,
        "torn_write" => FaultSite::TornWrite,
        "bit_flip" => FaultSite::BitFlip,
        other => return Err(format!("{flag}: unknown fault site '{other}'")),
    };
    let nth = nth
        .parse()
        .map_err(|_| format!("{flag}: N must be a positive integer"))?;
    Ok((site, nth))
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:5433".to_string(),
        max_concurrent: 8,
        queue_limit: 16,
        admission_timeout_ms: None,
        partitions: None,
        spill_dir: None,
        resumable: false,
        checkpoint_interval: None,
        crash_at: None,
        corrupt_at: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag_value = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--max-concurrent" => {
                opts.max_concurrent = flag_value("--max-concurrent")?
                    .parse()
                    .map_err(|_| "--max-concurrent: expected a positive integer".to_string())?;
            }
            "--queue-limit" => {
                opts.queue_limit = flag_value("--queue-limit")?
                    .parse()
                    .map_err(|_| "--queue-limit: expected a positive integer".to_string())?;
            }
            "--admission-timeout-ms" => {
                let v = flag_value("--admission-timeout-ms")?
                    .parse()
                    .map_err(|_| "--admission-timeout-ms: expected milliseconds".to_string())?;
                opts.admission_timeout_ms = Some(v);
            }
            "--partitions" => {
                let v = flag_value("--partitions")?
                    .parse()
                    .map_err(|_| "--partitions: expected a positive integer".to_string())?;
                opts.partitions = Some(v);
            }
            "--spill-dir" => opts.spill_dir = Some(flag_value("--spill-dir")?),
            "--resumable" => opts.resumable = true,
            "--checkpoint-interval" => {
                let v = flag_value("--checkpoint-interval")?.parse().map_err(|_| {
                    "--checkpoint-interval: expected an iteration count".to_string()
                })?;
                opts.checkpoint_interval = Some(v);
            }
            "--crash-at" => {
                opts.crash_at = Some(parse_fault_spec("--crash-at", &flag_value("--crash-at")?)?);
            }
            "--corrupt-at" => {
                opts.corrupt_at = Some(parse_fault_spec(
                    "--corrupt-at",
                    &flag_value("--corrupt-at")?,
                )?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: spinner-serve [ADDR] [--max-concurrent N] [--queue-limit N] \
                     [--admission-timeout-ms N] [--partitions N] [--spill-dir DIR] \
                     [--resumable] [--checkpoint-interval N] [--crash-at SITE:N] \
                     [--corrupt-at SITE:N]"
                        .to_string(),
                )
            }
            other if !other.starts_with('-') => opts.addr = other.to_string(),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.resumable && opts.spill_dir.is_none() {
        return Err("--resumable requires --spill-dir".to_string());
    }
    Ok(opts)
}

/// Set once by the signal handler; the main loop polls it and drains.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // Raw libc `signal(2)` via the C ABI: no extra crates, and storing
    // to a static atomic is async-signal-safe. SIGKILL cannot be
    // caught by design — that is the crash path the journal covers.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut config = EngineConfig::default()
        .with_max_concurrent_queries(opts.max_concurrent)
        .with_admission_queue_limit(opts.queue_limit);
    if let Some(ms) = opts.admission_timeout_ms {
        config = config.with_admission_timeout_ms(ms);
    }
    if let Some(p) = opts.partitions {
        config = config.with_partitions(p);
    }
    if let Some(dir) = &opts.spill_dir {
        config = config.with_spill_dir(dir.clone());
    }
    if opts.resumable {
        config = config.with_resumable_queries(true);
    }
    if let Some(n) = opts.checkpoint_interval {
        config = config.with_checkpoint_interval(n);
    }
    if let Some((site, nth)) = opts.crash_at {
        config = config.with_fault(FaultConfig::abort_nth(site, nth));
    }
    if let Some((site, nth)) = opts.corrupt_at {
        config = config.with_fault(FaultConfig::fail_nth(site, nth));
    }
    install_signal_handlers();
    let db = match Database::new(config) {
        Ok(db) => Arc::new(db),
        Err(e) => {
            eprintln!("engine start failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Resume anything adopted from a crashed predecessor BEFORE
    // accepting connections, so a reconnecting client's ATTACH finds
    // its result parked and ready.
    for skip in db.adoption_skipped() {
        println!("skipped query {}: {}", skip.0, skip.1);
    }
    for summary in db.resume_adopted() {
        println!(
            "resumed query {}: adopted_epoch={} resumed_iteration={} replayed_iterations={} rows={}",
            summary.query_id,
            summary.adopted_epoch,
            summary.resumed_iteration,
            summary.replayed_iterations,
            summary.rows
        );
    }
    let server = match Server::start(Arc::clone(&db), opts.addr.as_str()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {} failed: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "spinner-server listening on {} (admission cap {}, queue limit {})",
        server.local_addr(),
        opts.max_concurrent,
        opts.queue_limit
    );
    // Serve until SIGTERM/SIGINT requests a graceful drain (or the
    // process is killed outright); connection handling lives on the
    // server's own threads.
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::park_timeout(Duration::from_millis(100));
    }
    println!("draining: in-flight statements get 10s, new ones are shed");
    server.shutdown(Duration::from_secs(10));
    println!("drained; bye");
    ExitCode::SUCCESS
}
