//! `spinner-client` — line-oriented client for a running spinner-server.
//!
//! ```text
//! spinner-client [ADDR]
//! ```
//!
//! Reads one SQL statement per line from stdin (default server
//! `127.0.0.1:5433`), prints rows as tab-separated text, and exits on
//! EOF or `\q`.

use std::io::{self, BufRead, Write};
use std::process::ExitCode;

use spinner_server::{Client, Reply};

fn print_reply(reply: &Reply) {
    match reply {
        Reply::Rows { columns, rows } => {
            println!("{}", columns.join("\t"));
            for row in rows {
                let cells: Vec<&str> = row.iter().map(|c| c.as_deref().unwrap_or("NULL")).collect();
                println!("{}", cells.join("\t"));
            }
            println!("({} rows)", rows.len());
        }
        Reply::Affected(n) => println!("OK, {n} rows affected"),
        Reply::Ddl => println!("OK"),
        Reply::Text(text) => println!("{text}"),
        Reply::Error { code, message } => println!("ERROR [{code}]: {message}"),
    }
}

fn main() -> ExitCode {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:5433".to_string());
    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("connected to {addr} (session {})", client.session_id());
    let stdin = io::stdin();
    loop {
        print!("spinner> ");
        let _ = io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let sql = line.trim();
        if sql.is_empty() {
            continue;
        }
        if sql == "\\q" || sql.eq_ignore_ascii_case("quit") {
            break;
        }
        match client.query(sql) {
            Ok(reply) => print_reply(&reply),
            Err(e) => {
                eprintln!("connection lost: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let _ = client.close();
    ExitCode::SUCCESS
}
