//! `spinner-client` — line-oriented client for a running spinner-server.
//!
//! ```text
//! spinner-client [ADDR]
//! ```
//!
//! Reads one SQL statement per line from stdin (default server
//! `127.0.0.1:5433`), prints rows as tab-separated text, and exits on
//! EOF or `\q`. Connection attempts ride out a restarting server with
//! bounded exponential backoff; if a resumable statement was issued a
//! stable handle, it is printed, and `\attach <handle>` fetches the
//! result of a query the server resumed across a restart.

use std::io::{self, BufRead, Write};
use std::process::ExitCode;

use spinner_server::{Client, ReconnectPolicy, Reply};

fn print_reply(reply: &Reply) {
    match reply {
        Reply::Rows { columns, rows } => {
            println!("{}", columns.join("\t"));
            for row in rows {
                let cells: Vec<&str> = row.iter().map(|c| c.as_deref().unwrap_or("NULL")).collect();
                println!("{}", cells.join("\t"));
            }
            println!("({} rows)", rows.len());
        }
        Reply::Affected(n) => println!("OK, {n} rows affected"),
        Reply::Ddl => println!("OK"),
        Reply::Text(text) => println!("{text}"),
        Reply::Error { code, message } => println!("ERROR [{code}]: {message}"),
    }
}

fn main() -> ExitCode {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:5433".to_string());
    let mut client = match Client::connect_with_retry(addr.as_str(), ReconnectPolicy::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("connected to {addr} (session {})", client.session_id());
    let stdin = io::stdin();
    loop {
        print!("spinner> ");
        let _ = io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let sql = line.trim();
        if sql.is_empty() {
            continue;
        }
        if sql == "\\q" || sql.eq_ignore_ascii_case("quit") {
            break;
        }
        if let Some(handle) = sql.strip_prefix("\\attach ") {
            match handle.trim().parse::<u64>() {
                Ok(handle) => match client.attach(handle) {
                    Ok(reply) => print_reply(&reply),
                    Err(e) => {
                        eprintln!("connection lost: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                Err(_) => println!("usage: \\attach <handle>"),
            }
            continue;
        }
        match client.query(sql) {
            Ok(reply) => print_reply(&reply),
            Err(e) => {
                eprintln!("connection lost: {e}");
                // The handle frame arrives before the result: if the
                // server died mid-statement, this is what `\attach`
                // needs after it restarts.
                if let Some(handle) = client.last_handle() {
                    eprintln!("(statement was resumable: reconnect and run \\attach {handle})");
                }
                return ExitCode::FAILURE;
            }
        }
        if let Some(handle) = client.last_handle() {
            println!("(resumable: handle {handle})");
        }
    }
    let _ = client.close();
    ExitCode::SUCCESS
}
