//! A minimal blocking client for the spinner-server wire protocol.
//!
//! Used by the integration tests, the `repro concurrency` artifact and
//! the `spinner-client` binary. One [`Client`] maps to one server
//! session; [`Client::query`] is strictly request/response.

use std::io;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    decode_affected, decode_error, decode_rows, read_frame, write_frame, TAG_AFFECTED, TAG_ATTACH,
    TAG_CLOSE, TAG_DDL, TAG_ERROR, TAG_HANDLE, TAG_HELLO, TAG_QUERY, TAG_ROWS, TAG_TEXT,
};

/// Retry budget for [`Client::connect_with_retry`]: exponential backoff
/// with deterministic jitter, a delay cap, and a bounded attempt count —
/// a restarting server gets breathing room, a dead one yields a typed
/// [`spinner_common::Error::ConnectExhausted`] instead of a hang.
#[derive(Debug, Clone, Copy)]
pub struct ReconnectPolicy {
    /// Total connection attempts before giving up (≥ 1).
    pub max_attempts: u32,
    /// Delay after the first failed attempt; doubles per attempt.
    pub base_delay_ms: u64,
    /// Ceiling on any single backoff delay.
    pub max_delay_ms: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 8,
            base_delay_ms: 50,
            max_delay_ms: 2_000,
        }
    }
}

impl ReconnectPolicy {
    /// Backoff before attempt `attempt + 1` (0-based): `base * 2^attempt`
    /// capped at `max_delay_ms`, ± up to 25% deterministic jitter so a
    /// thundering herd of reconnecting clients decorrelates.
    fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_delay_ms)
            .max(1);
        // xorshift over (pid, attempt): stable within a process, different
        // across the fleet — no clock reads, no external crates.
        let mut x = (u64::from(std::process::id()) << 32) | u64::from(attempt) | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let jitter = exp / 4;
        let offset = if jitter > 0 { x % (2 * jitter + 1) } else { 0 };
        Duration::from_millis(exp - jitter + offset)
    }
}

/// One decoded server response to a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// A row set: column names plus text-rendered cells (`None` = NULL).
    Rows {
        /// Column names in output order.
        columns: Vec<String>,
        /// Rows of text cells; `None` is SQL NULL.
        rows: Vec<Vec<Option<String>>>,
    },
    /// DML completed, touching this many rows.
    Affected(u64),
    /// DDL or session command completed.
    Ddl,
    /// EXPLAIN / EXPLAIN ANALYZE rendering.
    Text(String),
    /// The statement failed; `code` is the stable token from
    /// [`crate::protocol::error_code`].
    Error {
        /// Machine-readable error token (e.g. `overloaded`).
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl Reply {
    /// Whether the statement succeeded.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Reply::Error { .. })
    }

    /// The error token, if this reply is an error.
    pub fn error_code(&self) -> Option<&str> {
        match self {
            Reply::Error { code, .. } => Some(code),
            _ => None,
        }
    }

    /// The rows, if this reply is a row set.
    pub fn rows(&self) -> Option<&[Vec<Option<String>>]> {
        match self {
            Reply::Rows { rows, .. } => Some(rows),
            _ => None,
        }
    }

    /// First cell of the first row parsed as an integer — the common
    /// shape for `SELECT COUNT(*)`-style probes in tests.
    pub fn scalar_i64(&self) -> Option<i64> {
        self.rows()?.first()?.first()?.as_deref()?.parse().ok()
    }
}

/// A blocking connection to a spinner-server, one session per client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    session_id: u64,
    /// Stable query handle from the most recent statement's `HANDLE`
    /// frame, if the server journaled it for crash resumption.
    last_handle: Option<u64>,
}

impl Client {
    /// Connect and consume the server greeting.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let (tag, payload) = read_frame(&mut stream)?;
        if tag != TAG_HELLO || payload.len() < 8 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "server did not send a greeting frame",
            ));
        }
        let mut id = [0u8; 8];
        id.copy_from_slice(&payload[..8]);
        Ok(Client {
            stream,
            session_id: u64::from_be_bytes(id),
            last_handle: None,
        })
    }

    /// Connect with a bounded exponential-backoff retry loop — the shape
    /// a client uses to ride out a server restart. Every attempt that
    /// fails (refused, reset, bad greeting) sleeps the policy's jittered
    /// backoff; when the budget is spent the *typed*
    /// [`spinner_common::Error::ConnectExhausted`] reports how many
    /// attempts were made and the last I/O error.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Copy,
        policy: ReconnectPolicy,
    ) -> spinner_common::Result<Client> {
        let attempts = policy.max_attempts.max(1);
        let mut last = String::from("no attempt made");
        for attempt in 0..attempts {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last = e.to_string(),
            }
            if attempt + 1 < attempts {
                std::thread::sleep(policy.delay(attempt));
            }
        }
        Err(spinner_common::Error::ConnectExhausted {
            attempts: u64::from(attempts),
            message: last,
        })
    }

    /// The server-assigned session id from the greeting.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Stable query handle the server issued for the most recent
    /// statement, if it was journaled for crash resumption. After a
    /// server crash, reconnect and pass it to [`Client::attach`].
    pub fn last_handle(&self) -> Option<u64> {
        self.last_handle
    }

    /// Execute one statement and decode the single response frame.
    /// Engine errors come back as `Ok(Reply::Error { .. })`; an `Err`
    /// here means the connection itself failed (e.g. the server shed
    /// the connection or shut down mid-query).
    pub fn query(&mut self, sql: &str) -> io::Result<Reply> {
        write_frame(&mut self.stream, TAG_QUERY, sql.as_bytes())?;
        self.read_reply()
    }

    /// Fetch the result of a query that was resumed across a server
    /// restart, by the stable handle issued before the crash. One-shot:
    /// a second attach on the same handle yields the `unknown_handle`
    /// error reply.
    pub fn attach(&mut self, handle: u64) -> io::Result<Reply> {
        write_frame(&mut self.stream, TAG_ATTACH, &handle.to_be_bytes())?;
        self.read_reply()
    }

    /// Read response frames until one terminates the statement,
    /// absorbing any `HANDLE` frame into [`Client::last_handle`].
    fn read_reply(&mut self) -> io::Result<Reply> {
        loop {
            let (tag, payload) = read_frame(&mut self.stream)?;
            match tag {
                TAG_HANDLE if payload.len() == 8 => {
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(&payload);
                    self.last_handle = Some(u64::from_be_bytes(buf));
                }
                TAG_HANDLE => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "HANDLE frame payload must be 8 bytes",
                    ));
                }
                TAG_ROWS => {
                    let (columns, rows) = decode_rows(&payload)?;
                    return Ok(Reply::Rows { columns, rows });
                }
                TAG_AFFECTED => return Ok(Reply::Affected(decode_affected(&payload)?)),
                TAG_DDL => return Ok(Reply::Ddl),
                TAG_TEXT => {
                    return Ok(Reply::Text(String::from_utf8_lossy(&payload).into_owned()));
                }
                TAG_ERROR => {
                    let (code, message) = decode_error(&payload)?;
                    return Ok(Reply::Error { code, message });
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected response tag {other:#x}"),
                    ));
                }
            }
        }
    }

    /// Send a query frame WITHOUT waiting for the response. Pairs with
    /// [`Client::kill`] in teardown tests that need a statement to be
    /// mid-flight when the connection dies; regular callers want
    /// [`Client::query`].
    pub fn fire(&mut self, sql: &str) -> io::Result<()> {
        write_frame(&mut self.stream, TAG_QUERY, sql.as_bytes())
    }

    /// Polite close: tell the server we are done, then drop the socket.
    pub fn close(mut self) -> io::Result<()> {
        write_frame(&mut self.stream, TAG_CLOSE, &[])
    }

    /// Abrupt teardown without a close frame — simulates a client crash
    /// or network partition. The server must notice, cancel any running
    /// statement, and release its admission slot.
    pub fn kill(self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}
