//! A minimal blocking client for the spinner-server wire protocol.
//!
//! Used by the integration tests, the `repro concurrency` artifact and
//! the `spinner-client` binary. One [`Client`] maps to one server
//! session; [`Client::query`] is strictly request/response.

use std::io;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

use crate::protocol::{
    decode_affected, decode_error, decode_rows, read_frame, write_frame, TAG_AFFECTED, TAG_CLOSE,
    TAG_DDL, TAG_ERROR, TAG_HELLO, TAG_QUERY, TAG_ROWS, TAG_TEXT,
};

/// One decoded server response to a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// A row set: column names plus text-rendered cells (`None` = NULL).
    Rows {
        /// Column names in output order.
        columns: Vec<String>,
        /// Rows of text cells; `None` is SQL NULL.
        rows: Vec<Vec<Option<String>>>,
    },
    /// DML completed, touching this many rows.
    Affected(u64),
    /// DDL or session command completed.
    Ddl,
    /// EXPLAIN / EXPLAIN ANALYZE rendering.
    Text(String),
    /// The statement failed; `code` is the stable token from
    /// [`crate::protocol::error_code`].
    Error {
        /// Machine-readable error token (e.g. `overloaded`).
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl Reply {
    /// Whether the statement succeeded.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Reply::Error { .. })
    }

    /// The error token, if this reply is an error.
    pub fn error_code(&self) -> Option<&str> {
        match self {
            Reply::Error { code, .. } => Some(code),
            _ => None,
        }
    }

    /// The rows, if this reply is a row set.
    pub fn rows(&self) -> Option<&[Vec<Option<String>>]> {
        match self {
            Reply::Rows { rows, .. } => Some(rows),
            _ => None,
        }
    }

    /// First cell of the first row parsed as an integer — the common
    /// shape for `SELECT COUNT(*)`-style probes in tests.
    pub fn scalar_i64(&self) -> Option<i64> {
        self.rows()?.first()?.first()?.as_deref()?.parse().ok()
    }
}

/// A blocking connection to a spinner-server, one session per client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    session_id: u64,
}

impl Client {
    /// Connect and consume the server greeting.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let (tag, payload) = read_frame(&mut stream)?;
        if tag != TAG_HELLO || payload.len() < 8 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "server did not send a greeting frame",
            ));
        }
        let mut id = [0u8; 8];
        id.copy_from_slice(&payload[..8]);
        Ok(Client {
            stream,
            session_id: u64::from_be_bytes(id),
        })
    }

    /// The server-assigned session id from the greeting.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Execute one statement and decode the single response frame.
    /// Engine errors come back as `Ok(Reply::Error { .. })`; an `Err`
    /// here means the connection itself failed (e.g. the server shed
    /// the connection or shut down mid-query).
    pub fn query(&mut self, sql: &str) -> io::Result<Reply> {
        write_frame(&mut self.stream, TAG_QUERY, sql.as_bytes())?;
        let (tag, payload) = read_frame(&mut self.stream)?;
        match tag {
            TAG_ROWS => {
                let (columns, rows) = decode_rows(&payload)?;
                Ok(Reply::Rows { columns, rows })
            }
            TAG_AFFECTED => Ok(Reply::Affected(decode_affected(&payload)?)),
            TAG_DDL => Ok(Reply::Ddl),
            TAG_TEXT => Ok(Reply::Text(String::from_utf8_lossy(&payload).into_owned())),
            TAG_ERROR => {
                let (code, message) = decode_error(&payload)?;
                Ok(Reply::Error { code, message })
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response tag {other:#x}"),
            )),
        }
    }

    /// Send a query frame WITHOUT waiting for the response. Pairs with
    /// [`Client::kill`] in teardown tests that need a statement to be
    /// mid-flight when the connection dies; regular callers want
    /// [`Client::query`].
    pub fn fire(&mut self, sql: &str) -> io::Result<()> {
        write_frame(&mut self.stream, TAG_QUERY, sql.as_bytes())
    }

    /// Polite close: tell the server we are done, then drop the socket.
    pub fn close(mut self) -> io::Result<()> {
        write_frame(&mut self.stream, TAG_CLOSE, &[])
    }

    /// Abrupt teardown without a close frame — simulates a client crash
    /// or network partition. The server must notice, cancel any running
    /// statement, and release its admission slot.
    pub fn kill(self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}
