//! The wire protocol spoken between `spinner-server` and its clients.
//!
//! Every message is one *frame*: a 4-byte big-endian payload length, a
//! 1-byte tag, then the payload. Clients send [`TAG_QUERY`] (UTF-8 SQL
//! text) and [`TAG_CLOSE`]; the server answers each query with exactly
//! one frame — [`TAG_ROWS`], [`TAG_AFFECTED`], [`TAG_DDL`], [`TAG_TEXT`]
//! (EXPLAIN / EXPLAIN ANALYZE renderings) or [`TAG_ERROR`] — and greets
//! every new connection with [`TAG_HELLO`] carrying the session id.
//!
//! Error frames lead with a stable machine-readable code token (see
//! [`error_code`]) so clients can distinguish shed-load signals
//! (`overloaded`, `admission_timeout`, `shutting_down`) from genuine
//! query failures without parsing prose.

use std::io::{self, Read, Write};

use spinner_common::{Batch, Error};

/// Upper bound on a frame payload; larger lengths are treated as a
/// protocol violation and the connection is dropped. Guards the server
/// against a garbage length prefix causing a multi-gigabyte allocation.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Client → server: execute the UTF-8 SQL text in the payload.
pub const TAG_QUERY: u8 = b'Q';
/// Client → server: clean connection close (empty payload).
pub const TAG_CLOSE: u8 = b'X';
/// Server → client greeting: 8-byte big-endian session id.
pub const TAG_HELLO: u8 = b'H';
/// Server → client: a row set (see [`encode_rows`] for the layout).
pub const TAG_ROWS: u8 = b'R';
/// Server → client: DML affected-row count as 8-byte big-endian.
pub const TAG_AFFECTED: u8 = b'A';
/// Server → client: DDL (or session command) completed; empty payload.
pub const TAG_DDL: u8 = b'D';
/// Server → client: error; payload is a length-prefixed code token
/// followed by the human-readable message.
pub const TAG_ERROR: u8 = b'E';
/// Server → client: free-form UTF-8 text (EXPLAIN and EXPLAIN ANALYZE).
pub const TAG_TEXT: u8 = b'P';
/// Server → client: stable query handle (8-byte big-endian) for a
/// journaled iterative statement, sent *before* its result frame. The
/// handle survives an engine restart: a reconnecting client can
/// [`TAG_ATTACH`] to it and fetch the resumed result.
pub const TAG_HANDLE: u8 = b'I';
/// Client → server: attach to a resumed query by its 8-byte big-endian
/// handle and fetch its result (one response frame, like a query).
pub const TAG_ATTACH: u8 = b'T';

/// In a rows frame, the cell length that denotes SQL NULL.
pub const NULL_CELL: u32 = u32::MAX;

/// Write one frame: length, tag, payload.
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame payload too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(&[tag])?;
    w.write_all(payload)?;
    w.flush()
}

/// `read_exact` that survives read timeouts. The server's disconnect
/// watcher sets `SO_RCVTIMEO` on the shared socket (timeouts apply to
/// every clone of the fd), so a blocking read on an idle connection
/// periodically returns `WouldBlock`/`TimedOut`; those mean "no bytes
/// yet", not "connection torn", and must not lose a partial read. With a
/// `deadline`, each timeout wake-up checks the clock and gives up with
/// `ErrorKind::TimedOut` once it passes — the keepalive reaper's signal.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    deadline: Option<std::time::Instant>,
) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                    return Err(io::ErrorKind::TimedOut.into());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Read one frame, enforcing [`MAX_FRAME_LEN`]. A clean EOF before the
/// length prefix surfaces as `ErrorKind::UnexpectedEof`.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    read_frame_deadline(r, None)
}

/// [`read_frame`] with a keepalive budget: if `idle` is set and no
/// complete frame arrives within it, the read gives up with
/// `ErrorKind::TimedOut` so the server can reap the half-open session.
/// Requires a read timeout on the socket (the watcher's `SO_RCVTIMEO`)
/// so the blocking read wakes up to check the clock.
pub fn read_frame_deadline(
    r: &mut impl Read,
    idle: Option<std::time::Duration>,
) -> io::Result<(u8, Vec<u8>)> {
    let deadline = idle.map(|d| std::time::Instant::now() + d);
    let mut len_buf = [0u8; 4];
    read_full(r, &mut len_buf, deadline)?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit {MAX_FRAME_LEN}"),
        ));
    }
    let mut tag = [0u8; 1];
    read_full(r, &mut tag, deadline)?;
    let mut payload = vec![0u8; len as usize];
    read_full(r, &mut payload, deadline)?;
    Ok((tag[0], payload))
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Encode a [`Batch`] as a rows payload: column count, length-prefixed
/// column names, row count, then cells as length-prefixed UTF-8 text
/// with [`NULL_CELL`] marking SQL NULL.
pub fn encode_rows(batch: &Batch) -> Vec<u8> {
    let names = batch.schema().names();
    let mut buf = Vec::new();
    put_u32(&mut buf, names.len() as u32);
    for name in &names {
        put_str(&mut buf, name);
    }
    put_u32(&mut buf, batch.len() as u32);
    for row in batch.rows() {
        for cell in row.iter() {
            if cell.is_null() {
                put_u32(&mut buf, NULL_CELL);
            } else {
                put_str(&mut buf, &cell.to_string());
            }
        }
    }
    buf
}

/// Encode an error payload: length-prefixed code token, then message.
pub fn encode_error(code: &str, message: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, code);
    buf.extend_from_slice(message.as_bytes());
    buf
}

/// A bounds-checked little reader over a frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "truncated frame payload",
            )),
        }
    }

    fn take_u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take_str(&mut self) -> io::Result<String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "invalid UTF-8 in frame"))
    }
}

/// Decode a rows payload into column names and text cells (`None` =
/// SQL NULL). Inverse of [`encode_rows`].
#[allow(clippy::type_complexity)]
pub fn decode_rows(payload: &[u8]) -> io::Result<(Vec<String>, Vec<Vec<Option<String>>>)> {
    let mut cur = Cursor::new(payload);
    // Counts come off the wire untrusted: validate each against the bytes
    // that could possibly back it BEFORE allocating or looping, so a
    // mutated frame claiming 4 billion columns/rows is a cheap typed
    // error, not a pre-allocation memory bomb or a busy loop.
    let ncols = cur.take_u32()? as usize;
    if ncols > cur.remaining() / 4 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "column count exceeds frame payload",
        ));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push(cur.take_str()?);
    }
    let nrows = cur.take_u32()? as usize;
    if nrows > 0 && (ncols == 0 || nrows > cur.remaining() / (4 * ncols)) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "row count exceeds frame payload",
        ));
    }
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            // Peek the length: NULL_CELL means a null cell, anything
            // else is a length-prefixed string we re-read in place.
            let len = cur.take_u32()?;
            if len == NULL_CELL {
                row.push(None);
            } else {
                let bytes = cur.take(len as usize)?;
                let text = String::from_utf8(bytes.to_vec()).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "invalid UTF-8 in cell")
                })?;
                row.push(Some(text));
            }
        }
        rows.push(row);
    }
    Ok((columns, rows))
}

/// Decode an error payload into `(code, message)`.
pub fn decode_error(payload: &[u8]) -> io::Result<(String, String)> {
    let mut cur = Cursor::new(payload);
    let code = cur.take_str()?;
    let message = String::from_utf8_lossy(&payload[cur.pos..]).into_owned();
    Ok((code, message))
}

/// Decode an affected-rows payload (8-byte big-endian count).
pub fn decode_affected(payload: &[u8]) -> io::Result<u64> {
    if payload.len() != 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "affected-rows payload must be 8 bytes",
        ));
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(payload);
    Ok(u64::from_be_bytes(b))
}

/// Stable machine-readable code token for an engine error, sent as the
/// leading field of every [`TAG_ERROR`] frame. Tokens are part of the
/// wire contract: clients match on them (notably the shed-load trio
/// `overloaded` / `admission_timeout` / `shutting_down`), so existing
/// tokens must never be renamed.
pub fn error_code(e: &Error) -> &'static str {
    match e {
        Error::Parse { .. } => "parse",
        Error::Plan(_) => "plan",
        Error::Type(_) => "type",
        Error::Execution(_) => "execution",
        Error::TableNotFound(_) => "table_not_found",
        Error::TableExists(_) => "table_exists",
        Error::ColumnNotFound(_) => "column_not_found",
        Error::DuplicateIterationKey { .. } => "duplicate_iteration_key",
        Error::IterationLimitExceeded { .. } => "iteration_limit_exceeded",
        Error::Arithmetic(_) => "arithmetic",
        Error::Unsupported(_) => "unsupported",
        Error::Io(_) => "io",
        Error::Cancelled => "cancelled",
        Error::Timeout { .. } => "timeout",
        Error::ResourceExhausted { .. } => "resource_exhausted",
        Error::WorkerPanicked { .. } => "worker_panicked",
        Error::FaultInjected { .. } => "fault_injected",
        Error::InvalidConfig(_) => "invalid_config",
        Error::SpillUnavailable { .. } => "spill_unavailable",
        Error::RecoveryExhausted { .. } => "recovery_exhausted",
        Error::Overloaded { .. } => "overloaded",
        Error::AdmissionTimeout { .. } => "admission_timeout",
        Error::ShuttingDown => "shutting_down",
        Error::PoolStalled { .. } => "pool_stalled",
        Error::StorageCorrupt { .. } => "storage_corrupt",
        Error::UnknownHandle { .. } => "unknown_handle",
        Error::ConnectExhausted { .. } => "connect_exhausted",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{row_of, DataType, Field, Schema, Value};
    use std::sync::Arc;

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_QUERY, b"SELECT 1").unwrap();
        write_frame(&mut buf, TAG_CLOSE, b"").unwrap();
        let mut rd = &buf[..];
        assert_eq!(
            read_frame(&mut rd).unwrap(),
            (TAG_QUERY, b"SELECT 1".to_vec())
        );
        assert_eq!(read_frame(&mut rd).unwrap(), (TAG_CLOSE, Vec::new()));
        assert_eq!(
            read_frame(&mut rd).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        buf.push(TAG_QUERY);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rows_round_trip_including_nulls() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("name", DataType::Text),
        ]));
        let batch = Batch::new(
            schema,
            vec![
                row_of([Value::Int(1), Value::Text("one".into())]),
                row_of([Value::Int(2), Value::Null]),
            ],
        );
        let (cols, rows) = decode_rows(&encode_rows(&batch)).unwrap();
        assert_eq!(cols, vec!["k".to_string(), "name".to_string()]);
        assert_eq!(rows[0], vec![Some("1".into()), Some("one".into())]);
        assert_eq!(rows[1], vec![Some("2".into()), None]);
    }

    #[test]
    fn error_payloads_round_trip() {
        let payload = encode_error("overloaded", "queue full");
        let (code, message) = decode_error(&payload).unwrap();
        assert_eq!(code, "overloaded");
        assert_eq!(message, "queue full");
    }

    #[test]
    fn shed_load_errors_map_to_stable_tokens() {
        assert_eq!(
            error_code(&Error::Overloaded {
                active: 1,
                queued: 2,
                limit: 2
            }),
            "overloaded"
        );
        assert_eq!(
            error_code(&Error::AdmissionTimeout {
                waited_ms: 10,
                limit_ms: 5
            }),
            "admission_timeout"
        );
        assert_eq!(error_code(&Error::ShuttingDown), "shutting_down");
        assert_eq!(error_code(&Error::Cancelled), "cancelled");
    }

    #[test]
    fn restart_errors_map_to_stable_tokens() {
        assert_eq!(
            error_code(&Error::UnknownHandle { handle: 7 }),
            "unknown_handle"
        );
        assert_eq!(
            error_code(&Error::ConnectExhausted {
                attempts: 3,
                message: "refused".into()
            }),
            "connect_exhausted"
        );
    }

    /// Property test for the frame decoder: byte-level corruption of a
    /// valid frame stream — bit flips, truncations, splices — must only
    /// ever produce decoded frames or typed `io::Error`s. No panic, no
    /// unbounded allocation past `MAX_FRAME_LEN`, and guaranteed
    /// termination (every `Ok` consumes at least the 5-byte header).
    #[test]
    fn mutated_frame_streams_never_panic() {
        // Deterministic xorshift so a failure reproduces exactly.
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut valid = Vec::new();
        write_frame(
            &mut valid,
            TAG_QUERY,
            b"WITH ITERATIVE t AS (SELECT 1) SELECT * FROM t",
        )
        .unwrap();
        write_frame(&mut valid, TAG_ATTACH, &42u64.to_be_bytes()).unwrap();
        write_frame(&mut valid, TAG_HANDLE, &7u64.to_be_bytes()).unwrap();
        write_frame(
            &mut valid,
            TAG_ERROR,
            &encode_error("overloaded", "queue full"),
        )
        .unwrap();
        write_frame(&mut valid, TAG_CLOSE, b"").unwrap();
        for _ in 0..2000 {
            let mut bytes = valid.clone();
            for _ in 0..(next() % 4 + 1) {
                match next() % 3 {
                    // Bit flip anywhere (length prefixes included).
                    0 => {
                        let i = (next() % bytes.len() as u64) as usize;
                        bytes[i] ^= 1 << (next() % 8);
                    }
                    // Truncate mid-frame.
                    1 => {
                        let keep = (next() % (bytes.len() as u64 + 1)) as usize;
                        bytes.truncate(keep);
                    }
                    // Splice in garbage bytes.
                    _ => {
                        let i = (next() % (bytes.len() as u64 + 1)) as usize;
                        let garbage: Vec<u8> = (0..(next() % 9)).map(|_| next() as u8).collect();
                        bytes.splice(i..i, garbage);
                    }
                }
                if bytes.is_empty() {
                    bytes.push(next() as u8);
                }
            }
            let mut rd = &bytes[..];
            loop {
                match read_frame(&mut rd) {
                    Ok((_tag, payload)) => {
                        assert!(payload.len() as u32 <= MAX_FRAME_LEN);
                        // Whatever the tag claims, payload decoders must
                        // also fail typed rather than panic.
                        let _ = decode_rows(&payload);
                        let _ = decode_error(&payload);
                        let _ = decode_affected(&payload);
                    }
                    Err(e) => {
                        assert!(
                            matches!(
                                e.kind(),
                                io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
                            ),
                            "unexpected error kind {:?}",
                            e.kind()
                        );
                        break;
                    }
                }
            }
        }
    }
}
