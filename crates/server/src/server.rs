//! The multi-session TCP front-end: accept loop, per-connection
//! handlers, connection-drop teardown and graceful drain.
//!
//! ## Layout
//!
//! One thread accepts connections; each accepted connection gets its
//! own handler thread owning a [`Session`] over the shared
//! [`Database`], plus a lightweight *watcher* thread that `peek`s the
//! socket while a statement runs. If the peer vanishes mid-query the
//! watcher sees EOF and calls [`Session::cancel_current`], so the
//! running statement fails at its next guard check, its admission
//! permit is released, and the slot goes back to the pool — a dropped
//! connection can never leak capacity. Between statements, an idle
//! connection is reaped once it stays silent past the configured
//! `session_keepalive_ms` (0 disables), so half-open peers the TCP
//! stack never reports as closed cannot pin connection state forever.
//!
//! ## Overload & drain
//!
//! Admission control itself lives in the engine
//! ([`spinner_common::AdmissionController`], wired by
//! `EngineConfig::max_concurrent_queries`): a statement that cannot be
//! admitted comes back as a typed `Overloaded` / `AdmissionTimeout`
//! error, which the handler forwards as an error frame with a stable
//! code token — clients see explicit shed-load signals, never an
//! unbounded queue. [`Server::shutdown`] drains gracefully: stop
//! admitting (`begin_drain`), give in-flight statements a grace period
//! to finish, then close every connection and join all threads.
//!
//! ## Chaos hooks
//!
//! The accept loop and the per-connection read/write paths consult the
//! engine's fault injector at `FaultSite::Accept`, `SessionRead` and
//! `SessionWrite`, so the storm suites can exercise torn connections
//! the same way they exercise torn partitions.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use spinner_common::{Error, FaultSite, Result};
use spinner_engine::{Database, QueryResult, Session};

use crate::protocol::TAG_AFFECTED;
use crate::protocol::{
    encode_error, encode_rows, error_code, read_frame_deadline, write_frame, TAG_ATTACH, TAG_CLOSE,
    TAG_DDL, TAG_ERROR, TAG_HANDLE, TAG_HELLO, TAG_QUERY, TAG_ROWS, TAG_TEXT,
};

/// How long the watcher sleeps between liveness peeks at the socket.
const WATCH_INTERVAL: Duration = Duration::from_millis(25);

/// Connection state shared between the accept loop, the handlers and
/// [`Server::shutdown`].
struct Shared {
    /// Clones of every live connection's stream, so drain can wake
    /// handlers blocked in `read`.
    conns: Mutex<Vec<TcpStream>>,
    /// Handler threads to join on shutdown.
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Set once drain starts; the accept loop exits and handlers stop
    /// reading new statements.
    draining: AtomicBool,
}

impl Shared {
    fn lock_conns(&self) -> std::sync::MutexGuard<'_, Vec<TcpStream>> {
        self.conns.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_threads(&self) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
        self.threads.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A running spinner-server bound to a TCP address. Dropping the server
/// performs a best-effort drain; call [`Server::shutdown`] for the
/// graceful version with an in-flight grace period.
pub struct Server {
    db: Arc<Database>,
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// accepting connections against `db`.
    pub fn start(db: Arc<Database>, addr: impl ToSocketAddrs) -> Result<Server> {
        let listener = TcpListener::bind(addr).map_err(|e| Error::Io(e.to_string()))?;
        let local = listener
            .local_addr()
            .map_err(|e| Error::Io(e.to_string()))?;
        let shared = Arc::new(Shared {
            conns: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
            draining: AtomicBool::new(false),
        });
        let accept = {
            let db = Arc::clone(&db);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("spinner-accept".into())
                .spawn(move || accept_loop(listener, db, shared))
                .map_err(|e| Error::Io(e.to_string()))?
        };
        Ok(Server {
            db,
            addr: local,
            shared,
            accept: Some(accept),
        })
    }

    /// The address the server is actually listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine behind this server.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Graceful drain: stop admitting new statements, give in-flight
    /// ones up to `grace` to finish, then close every connection and
    /// join all threads. Idempotent.
    pub fn shutdown(mut self, grace: Duration) {
        self.shutdown_inner(grace);
    }

    fn shutdown_inner(&mut self, grace: Duration) {
        if self.shared.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(ctrl) = self.db.admission() {
            ctrl.begin_drain();
            // Let in-flight statements finish (or hit their deadlines);
            // new ones are already being shed with `ShuttingDown`.
            let _ = ctrl.wait_idle(grace);
        }
        // Unblock the accept loop with a throwaway connection; it
        // re-checks `draining` after every accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Wake handlers blocked in `read` so they observe the drain.
        for conn in self.shared.lock_conns().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let threads: Vec<_> = self.shared.lock_threads().drain(..).collect();
        for handle in threads {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner(Duration::from_secs(5));
    }
}

fn accept_loop(listener: TcpListener, db: Arc<Database>, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            // The wake-up connection (or any racer) is dropped unserved.
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Chaos hook: a fault at the accept site sheds the connection
        // before a session (or any engine state) exists for it.
        if db.inject_fault(FaultSite::Accept).is_err() {
            drop(stream);
            continue;
        }
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            shared.lock_conns().push(clone);
        }
        let db = Arc::clone(&db);
        let spawned = std::thread::Builder::new()
            .name("spinner-conn".into())
            .spawn({
                let shared = Arc::clone(&shared);
                move || handle_connection(stream, db, shared)
            });
        match spawned {
            Ok(handle) => shared.lock_threads().push(handle),
            Err(_) => continue,
        }
    }
}

/// Watch a connection for EOF while statements run; on peer
/// disappearance, cancel the session's current statement so its guard
/// trips and its admission slot is released.
fn watch_for_disconnect(stream: TcpStream, session: Arc<Session>, done: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(WATCH_INTERVAL));
    let mut probe = [0u8; 1];
    while !done.load(Ordering::SeqCst) {
        match stream.peek(&mut probe) {
            // EOF: the peer closed (or was killed). Cancel whatever is
            // running; the handler notices via its own read/write error.
            Ok(0) => {
                session.cancel_current();
                return;
            }
            // Bytes are waiting for the handler to read — the peer is
            // alive; back off so we do not spin while it pipelines.
            Ok(_) => std::thread::sleep(WATCH_INTERVAL),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                session.cancel_current();
                return;
            }
        }
    }
}

fn handle_connection(mut stream: TcpStream, db: Arc<Database>, shared: Arc<Shared>) {
    let session = Arc::new(Session::new(Arc::clone(&db)));
    if write_frame(&mut stream, TAG_HELLO, &session.id().to_be_bytes()).is_err() {
        return;
    }
    // Keepalive: a client that goes silent for longer than this between
    // statements is presumed dead and its connection reaped, so half-open
    // peers (pulled cable, frozen process) cannot pin slots forever.
    // 0 disables the reaper.
    let keepalive_ms = db.config().session_keepalive_ms;
    let idle_limit = (keepalive_ms > 0).then(|| Duration::from_millis(keepalive_ms));
    if idle_limit.is_some() {
        // The watcher normally installs this, but its spawn is
        // best-effort; the deadline check needs the periodic wake-up.
        let _ = stream.set_read_timeout(Some(WATCH_INTERVAL));
    }
    let done = Arc::new(AtomicBool::new(false));
    let watcher = stream.try_clone().ok().and_then(|clone| {
        let session = Arc::clone(&session);
        let done = Arc::clone(&done);
        std::thread::Builder::new()
            .name("spinner-watch".into())
            .spawn(move || watch_for_disconnect(clone, session, done))
            .ok()
    });

    loop {
        let (tag, payload) = match read_frame_deadline(&mut stream, idle_limit) {
            Ok(frame) => frame,
            // EOF, torn read, or keepalive expiry: make sure nothing
            // keeps running on behalf of this connection, then tear down.
            Err(_) => {
                session.cancel_current();
                break;
            }
        };
        // Chaos hook: a fault on the read path models a corrupted
        // request — the connection is dropped, never half-served.
        if db.inject_fault(FaultSite::SessionRead).is_err() {
            break;
        }
        match tag {
            TAG_CLOSE => break,
            TAG_QUERY => {
                if shared.draining.load(Ordering::SeqCst) {
                    let payload = encode_error(
                        error_code(&Error::ShuttingDown),
                        &Error::ShuttingDown.to_string(),
                    );
                    let _ = write_frame(&mut stream, TAG_ERROR, &payload);
                    break;
                }
                let sql = String::from_utf8_lossy(&payload);
                // A resumable statement journals itself (and publishes
                // its stable handle) at execution *start*; a sibling
                // thread polls for it and sends the HANDLE frame while
                // the statement still runs, so the client holds the
                // handle before any crash — that is what makes
                // reconnect-and-attach possible. Nothing else writes to
                // this stream until the statement finishes, so the
                // side-channel write cannot interleave with a response.
                let exec_thread = std::thread::current().id();
                let handle_done = Arc::new(AtomicBool::new(false));
                let handle_poller = stream.try_clone().ok().and_then(|mut side| {
                    let db = Arc::clone(&db);
                    let done = Arc::clone(&handle_done);
                    std::thread::Builder::new()
                        .name("spinner-handle".into())
                        .spawn(move || {
                            while !done.load(Ordering::SeqCst) {
                                if let Some(handle) = db.take_handle_for(exec_thread) {
                                    let _ =
                                        write_frame(&mut side, TAG_HANDLE, &handle.to_be_bytes());
                                    return;
                                }
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            // Statement finished before a handle showed
                            // up; a last look closes the race where it
                            // was published between poll and flag.
                            if let Some(handle) = db.take_handle_for(exec_thread) {
                                let _ = write_frame(&mut side, TAG_HANDLE, &handle.to_be_bytes());
                            }
                        })
                        .ok()
                });
                let outcome = session.execute(&sql);
                handle_done.store(true, Ordering::SeqCst);
                if let Some(poller) = handle_poller {
                    let _ = poller.join();
                } else {
                    // No poller thread: publish the handle late, before
                    // the result frame, rather than not at all.
                    if let Some(handle) = db.take_last_handle() {
                        let _ = write_frame(&mut stream, TAG_HANDLE, &handle.to_be_bytes());
                    }
                }
                // Chaos hook: a fault on the write path models a torn
                // response; the statement already ran, so the only
                // honest move is to drop the connection.
                if db.inject_fault(FaultSite::SessionWrite).is_err() {
                    break;
                }
                if respond(&mut stream, outcome).is_err() {
                    session.cancel_current();
                    break;
                }
            }
            TAG_ATTACH => {
                if payload.len() != 8 {
                    let payload = encode_error("protocol", "ATTACH payload must be 8 bytes");
                    let _ = write_frame(&mut stream, TAG_ERROR, &payload);
                    break;
                }
                let mut buf = [0u8; 8];
                buf.copy_from_slice(&payload);
                let handle = u64::from_be_bytes(buf);
                // One-shot: the parked result of a query resumed across
                // an engine restart. Unknown/taken handles come back as
                // the typed `unknown_handle` error frame.
                if respond(&mut stream, db.take_resumed_result(handle)).is_err() {
                    break;
                }
            }
            _ => {
                let payload = encode_error("protocol", "unknown frame tag");
                let _ = write_frame(&mut stream, TAG_ERROR, &payload);
                break;
            }
        }
    }

    done.store(true, Ordering::SeqCst);
    let _ = stream.shutdown(Shutdown::Both);
    if let Some(handle) = watcher {
        let _ = handle.join();
    }
}

/// Render one statement outcome as its single response frame.
fn respond(stream: &mut TcpStream, outcome: Result<QueryResult>) -> io::Result<()> {
    match outcome {
        Ok(QueryResult::Rows(batch)) => write_frame(stream, TAG_ROWS, &encode_rows(&batch)),
        Ok(QueryResult::Affected { rows }) => {
            write_frame(stream, TAG_AFFECTED, &(rows as u64).to_be_bytes())
        }
        Ok(QueryResult::Ddl) => write_frame(stream, TAG_DDL, &[]),
        Ok(QueryResult::Explain(text)) => write_frame(stream, TAG_TEXT, text.as_bytes()),
        Ok(QueryResult::Analyze(profile)) => {
            write_frame(stream, TAG_TEXT, profile.render().as_bytes())
        }
        Err(e) => write_frame(
            stream,
            TAG_ERROR,
            &encode_error(error_code(&e), &e.to_string()),
        ),
    }
}
