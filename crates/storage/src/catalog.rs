//! The catalog: named base tables, with DDL-cost accounting.
//!
//! The paper argues that middleware solutions pay metadata overhead for
//! every temporary-table CREATE/DROP (§II). The catalog therefore counts
//! DDL operations so experiments can report how many catalog round-trips
//! each execution strategy performed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use spinner_common::{Error, Result, SchemaRef};

use crate::table::Table;

/// Thread-safe map of table name to [`Table`].
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Table>>,
    ddl_ops: AtomicU64,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table. Errors if the name is taken.
    pub fn create_table(
        &self,
        name: &str,
        schema: SchemaRef,
        partitions: usize,
        partition_key: Option<usize>,
        primary_key: Option<usize>,
    ) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(Error::TableExists(name.to_owned()));
        }
        tables.insert(
            key.clone(),
            Table::new(key, schema, partitions, partition_key, primary_key),
        );
        self.ddl_ops.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Drop a table. Errors if it does not exist.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.write().remove(&key).is_none() {
            return Err(Error::TableNotFound(name.to_owned()));
        }
        self.ddl_ops.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Cheap snapshot clone of a table (Arc-backed partitions).
    pub fn get(&self, name: &str) -> Result<Table> {
        let key = name.to_ascii_lowercase();
        self.tables
            .read()
            .get(&key)
            .cloned()
            .ok_or_else(|| Error::TableNotFound(name.to_owned()))
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Apply a mutation to a table under the write lock.
    pub fn with_table_mut<T>(
        &self,
        name: &str,
        f: impl FnOnce(&mut Table) -> Result<T>,
    ) -> Result<T> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        let table = tables
            .get_mut(&key)
            .ok_or_else(|| Error::TableNotFound(name.to_owned()))?;
        f(table)
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of CREATE/DROP operations performed so far.
    pub fn ddl_op_count(&self) -> u64 {
        self.ddl_ops.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{DataType, Field, Schema};
    use std::sync::Arc;

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![Field::new("id", DataType::Int)]))
    }

    #[test]
    fn create_get_drop_roundtrip() {
        let cat = Catalog::new();
        cat.create_table("T1", schema(), 2, Some(0), None).unwrap();
        assert!(cat.contains("t1"));
        assert_eq!(cat.get("T1").unwrap().name(), "t1");
        cat.drop_table("t1").unwrap();
        assert!(!cat.contains("t1"));
    }

    #[test]
    fn duplicate_create_fails() {
        let cat = Catalog::new();
        cat.create_table("t", schema(), 1, None, None).unwrap();
        assert_eq!(
            cat.create_table("T", schema(), 1, None, None),
            Err(Error::TableExists("T".into()))
        );
    }

    #[test]
    fn ddl_ops_are_counted() {
        let cat = Catalog::new();
        cat.create_table("a", schema(), 1, None, None).unwrap();
        cat.create_table("b", schema(), 1, None, None).unwrap();
        cat.drop_table("a").unwrap();
        assert_eq!(cat.ddl_op_count(), 3);
    }

    #[test]
    fn missing_table_errors() {
        let cat = Catalog::new();
        assert!(matches!(cat.get("nope"), Err(Error::TableNotFound(_))));
        assert!(matches!(
            cat.drop_table("nope"),
            Err(Error::TableNotFound(_))
        ));
    }
}
