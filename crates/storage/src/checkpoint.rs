//! Iteration-boundary checkpoints for mid-loop recovery.
//!
//! The insight (shared with Flink's iterative dataflows and REX): at the
//! top of a loop iteration, the CTE table plus the loop counters are a
//! *complete* recovery point — nothing else in the executor carries loop
//! state. A [`CheckpointStore`] keeps the newest such snapshot per running
//! loop; after a transient failure the executor restores the snapshot into
//! the temp registry and replays from the checkpointed iteration instead
//! of restarting the whole query.
//!
//! Snapshots are cheap by construction: [`Partitioned`] stores each
//! partition as an immutable `Arc<Vec<Row>>`, so cloning a table is O(P)
//! pointer bumps (copy-on-write) — a checkpoint of a rename-path working
//! table costs pointers, not rows. The same sharing is why the store can
//! afford to retain **two epochs** per loop: each [`CheckpointStore::save`] commits a new epoch and demotes the old
//! current to `previous` instead of discarding it. If the newest epoch
//! turns out to be unreadable on rollback — a spilled snapshot whose file
//! the disk mangled surfaces as the typed [`Error::StorageCorrupt`] — the
//! store discards the bad epoch (deleting its file and manifest entry)
//! and falls back to the previous epoch, so recovery replays a little
//! further back rather than failing the query. Only when *no* epoch
//! survives does the typed error propagate; recovery never silently
//! restarts, and never returns unverified rows.
//!
//! Under memory pressure a snapshot is a prime spill victim: it is touched
//! only on save and on rollback, so the accountant ranks checkpoints just
//! after common-result tables in coldest-first order. A spilled snapshot is
//! rehydrated by [`CheckpointStore::latest`] — which is why that method is
//! fallible: the read back from disk can hit a fault, and recovery treats
//! that as a transient error, never as "no checkpoint, silently restart".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use spinner_common::memory::{RegionId, RegionKind};
use spinner_common::{Error, FaultSite, Result};

use crate::journal::{EpochRecord, QueryJournal};
use crate::partition::Partitioned;
use crate::spill::{SpillEnv, SpillHandle};

/// A consistent snapshot of one loop's recoverable state, taken at an
/// iteration boundary.
#[derive(Debug, Clone)]
pub struct LoopCheckpoint {
    /// The iteration the snapshot was taken *after* (0 = loop entry, before
    /// the first iteration ran). A rollback replays from `iteration + 1`.
    pub iteration: u64,
    /// Cumulative updated-rows counter at the boundary (feeds the
    /// `UNTIL`-style termination checks and the stats counters).
    pub cumulative_updates: u64,
    /// The temp-registry entries captured: the CTE table and, for
    /// fixed-point loops, the delta table.
    pub tables: Vec<(String, Partitioned)>,
}

impl LoopCheckpoint {
    /// Estimated bytes held alive by this snapshot (shared with the live
    /// tables until either side is replaced — see module docs).
    pub fn estimated_bytes(&self) -> u64 {
        self.tables.iter().map(|(_, d)| d.estimated_bytes()).sum()
    }
}

#[derive(Debug)]
enum Slot {
    Resident(LoopCheckpoint),
    Spilled(SpillHandle),
}

/// One committed checkpoint epoch: the snapshot (resident or spilled),
/// its accountant region, and its epoch number (1-based per loop).
#[derive(Debug)]
struct EpochSlot {
    slot: Slot,
    region: Option<RegionId>,
    epoch: u64,
}

#[derive(Debug)]
struct Entry {
    current: EpochSlot,
    previous: Option<EpochSlot>,
}

/// A checkpoint rehydrated from a dead process's files, staged for the
/// loop driver to consume instead of starting from iteration 0.
///
/// `journal_iteration` is the iteration the *journal* names as newest; it
/// can run ahead of `checkpoint.iteration` when the newest epoch was
/// corrupt and adoption fell back to the previous one. The difference is
/// the replayed work the crash harness bounds by one checkpoint interval.
#[derive(Debug, Clone)]
pub struct ResumeSeed {
    /// The adopted snapshot the loop seeds its state from.
    pub checkpoint: LoopCheckpoint,
    /// Manifest epoch the snapshot was committed under.
    pub adopted_epoch: u64,
    /// Newest iteration the dead process had durably recorded.
    pub journal_iteration: u64,
}

/// Journal context of the statement this store belongs to: where to
/// record committed epochs so a restart can find them.
#[derive(Debug)]
struct JournalCtx {
    journal: Arc<QueryJournal>,
    query_id: u64,
}

/// Per-query store of the two newest checkpoint epochs of each running
/// loop, keyed by the loop's internal CTE name.
///
/// Writes replace the slot atomically under one lock acquisition, so a
/// failure *while building* a snapshot (the caller clones tables before
/// calling [`save`](Self::save)) leaves the previous checkpoint — and the
/// live loop state — untouched.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    slots: RwLock<HashMap<String, Entry>>,
    taken: AtomicU64,
    bytes: AtomicU64,
    spill: RwLock<Option<Arc<SpillEnv>>>,
    /// Durable-resume side state: the on-disk handles of the two newest
    /// journaled checkpoint files per loop, newest first. Dropping an
    /// evicted handle deletes its file, keeping disk usage bounded at two
    /// epochs — exactly what the journal records.
    durable: RwLock<HashMap<String, Vec<(u64, SpillHandle)>>>,
    /// Seeds staged by the adoption pass, consumed once by the loop
    /// driver (keyed by the loop's internal CTE name).
    resume: RwLock<HashMap<String, ResumeSeed>>,
    journal: RwLock<Option<JournalCtx>>,
}

impl CheckpointStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or remove) the spill environment. With one installed,
    /// snapshots are charged to the memory accountant and may be spilled.
    pub fn set_spill(&self, env: Option<Arc<SpillEnv>>) {
        *self.spill.write() = env;
    }

    /// The installed spill environment, if any.
    pub fn spill_env(&self) -> Option<Arc<SpillEnv>> {
        self.spill.read().clone()
    }

    /// Attach the statement's journal context. With one attached, every
    /// [`save`](Self::save) also persists the snapshot to a sealed file
    /// and records the committed epoch in the journal, making the loop
    /// resumable across a process crash.
    pub fn set_journal(&self, journal: Arc<QueryJournal>, query_id: u64) {
        *self.journal.write() = Some(JournalCtx { journal, query_id });
    }

    /// Stage an adopted checkpoint for the loop keyed by `loop_key`; the
    /// loop driver consumes it via [`take_resume`](Self::take_resume) and
    /// continues from the checkpointed iteration instead of 0.
    pub fn prime_resume(&self, loop_key: &str, seed: ResumeSeed) {
        self.resume
            .write()
            .insert(loop_key.to_ascii_lowercase(), seed);
    }

    /// Consume the staged resume seed for `loop_key`, if any (one-shot).
    pub fn take_resume(&self, loop_key: &str) -> Option<ResumeSeed> {
        self.resume.write().remove(&loop_key.to_ascii_lowercase())
    }

    fn release_slot(&self, env: &Option<Arc<SpillEnv>>, slot: EpochSlot) {
        if let (Some(env), Some(region)) = (env, slot.region) {
            env.accountant.release(region);
        }
        // Dropping a Spilled slot's handle deletes its file and manifest
        // entry.
    }

    fn release(&self, env: &Option<Arc<SpillEnv>>, entry: Entry) {
        self.release_slot(env, entry.current);
        if let Some(prev) = entry.previous {
            self.release_slot(env, prev);
        }
    }

    /// Install `checkpoint` as the newest epoch for `loop_id`. The old
    /// current epoch is demoted to the fallback slot; the epoch before
    /// that is freed. With a spill environment installed the epoch is
    /// also committed to the on-disk manifest.
    pub fn save(&self, loop_id: &str, checkpoint: LoopCheckpoint) {
        self.taken.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(checkpoint.estimated_bytes(), Ordering::Relaxed);
        let key = loop_id.to_ascii_lowercase();
        let env = self.spill_env();
        let region = env.as_ref().map(|e| {
            e.accountant.register(
                &format!("checkpoint:{key}"),
                RegionKind::Checkpoint,
                checkpoint.estimated_bytes(),
            )
        });
        if let Some(env) = &env {
            // Durable-resume side path: when a journal is attached, the
            // snapshot itself is persisted *before* the epoch naming it is
            // committed, so a kill at any point leaves either a complete
            // adoptable epoch or an unreferenced orphan file (GC'd at the
            // next startup) — never an epoch pointing at a torn file.
            let journaled = self.journal.read().is_some();
            let handle = if journaled {
                env.manager
                    .write_checkpoint(&format!("checkpoint:{key}"), &checkpoint)
                    .ok()
            } else {
                None
            };
            // The commit barrier is its own fault site: the crash harness
            // aborts here to exercise the file-written-epoch-uncommitted
            // window. An injected error skips the commit (degrading this
            // save to in-memory only) without failing the loop.
            if env.manager.hit(FaultSite::ManifestCommit).is_ok() {
                let epoch = env
                    .manager
                    .manifest()
                    .commit_epoch(&format!("checkpoint:{key}"), env.manager.durable());
                env.metrics().note_epoch();
                if let Some(handle) = handle {
                    let ctx = self.journal.read();
                    if let Some(ctx) = ctx.as_ref() {
                        ctx.journal.note_epoch(
                            ctx.query_id,
                            EpochRecord {
                                epoch,
                                iteration: checkpoint.iteration,
                                file: handle
                                    .path()
                                    .file_name()
                                    .map(|n| n.to_string_lossy().into_owned())
                                    .unwrap_or_default(),
                            },
                        );
                    }
                    drop(ctx);
                    let mut durable = self.durable.write();
                    let handles = durable.entry(key.clone()).or_default();
                    handles.insert(0, (epoch, handle));
                    handles.truncate(2);
                }
            }
        }
        let evicted;
        {
            let mut slots = self.slots.write();
            match slots.get_mut(&key) {
                Some(entry) => {
                    let fresh = EpochSlot {
                        slot: Slot::Resident(checkpoint),
                        region,
                        epoch: entry.current.epoch + 1,
                    };
                    let demoted = std::mem::replace(&mut entry.current, fresh);
                    evicted = entry.previous.replace(demoted);
                }
                None => {
                    slots.insert(
                        key,
                        Entry {
                            current: EpochSlot {
                                slot: Slot::Resident(checkpoint),
                                region,
                                epoch: 1,
                            },
                            previous: None,
                        },
                    );
                    evicted = None;
                }
            }
        }
        if let Some(old) = evicted {
            self.release_slot(&env, old);
        }
    }

    /// The newest readable snapshot for `loop_id`, if one was saved.
    /// O(tables) Arc bumps when resident; a spilled snapshot is read back
    /// from disk first, with every checksum verified. An unreadable
    /// newest epoch ([`Error::StorageCorrupt`]) is discarded and the
    /// previous epoch is promoted and tried instead; only when no epoch
    /// survives does the typed, transient error propagate — recovery
    /// never mistakes a lost disk file for "no checkpoint was taken".
    pub fn latest(&self, loop_id: &str) -> Result<Option<LoopCheckpoint>> {
        let key = loop_id.to_ascii_lowercase();
        let env = self.spill_env();
        loop {
            {
                let slots = self.slots.read();
                let Some(entry) = slots.get(&key) else {
                    return Ok(None);
                };
                if let Slot::Resident(ckpt) = &entry.current.slot {
                    if let (Some(env), Some(region)) = (&env, entry.current.region) {
                        env.accountant.touch(region);
                    }
                    return Ok(Some(ckpt.clone()));
                }
            }
            match self.rehydrate(&key, &env) {
                Ok(found) => return Ok(found),
                Err(err @ Error::StorageCorrupt { .. }) => {
                    // The newest epoch is unreadable; fall back one epoch
                    // and retry, or surface the typed error if this was
                    // the last one.
                    if !self.discard_current(&key, &env) {
                        return Err(err);
                    }
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// The epoch number of the newest retained snapshot (tests/EXPLAIN).
    pub fn current_epoch(&self, loop_id: &str) -> Option<u64> {
        self.slots
            .read()
            .get(&loop_id.to_ascii_lowercase())
            .map(|e| e.current.epoch)
    }

    fn rehydrate(&self, key: &str, env: &Option<Arc<SpillEnv>>) -> Result<Option<LoopCheckpoint>> {
        let Some(env) = env else {
            // Spilled slots only exist when an environment was installed;
            // if it was torn down since, the snapshot is unrecoverable.
            return Ok(None);
        };
        let mut slots = self.slots.write();
        let Some(entry) = slots.get_mut(key) else {
            return Ok(None);
        };
        match &entry.current.slot {
            Slot::Resident(ckpt) => Ok(Some(ckpt.clone())),
            Slot::Spilled(handle) => {
                let ckpt = env
                    .manager
                    .read_checkpoint(handle, &format!("checkpoint:{key}"))?;
                if let Some(region) = entry.current.region {
                    env.accountant.note_rehydrated(region);
                }
                entry.current.slot = Slot::Resident(ckpt.clone());
                Ok(Some(ckpt))
            }
        }
    }

    /// Discard an unreadable current epoch, promoting the previous epoch
    /// in its place. Returns `false` when there is no fallback epoch (the
    /// corrupt one stays put so retries keep failing typed, not silent).
    fn discard_current(&self, key: &str, env: &Option<Arc<SpillEnv>>) -> bool {
        let bad;
        {
            let mut slots = self.slots.write();
            let Some(entry) = slots.get_mut(key) else {
                return false;
            };
            let Some(prev) = entry.previous.take() else {
                return false;
            };
            bad = std::mem::replace(&mut entry.current, prev);
        }
        // Dropping the bad slot deletes the corrupt file + manifest entry.
        self.release_slot(env, bad);
        true
    }

    /// Serialize every resident snapshot of `loop_id` (current and
    /// fallback epoch) to disk and release its memory. Missing or
    /// already-spilled slots are a no-op returning `Ok(false)`.
    pub fn spill_entry(&self, loop_id: &str) -> Result<bool> {
        let key = loop_id.to_ascii_lowercase();
        let Some(env) = self.spill_env() else {
            return Ok(false);
        };
        let mut slots = self.slots.write();
        let Some(entry) = slots.get_mut(&key) else {
            return Ok(false);
        };
        let mut spilled = false;
        for slot in std::iter::once(&mut entry.current).chain(entry.previous.as_mut()) {
            let Slot::Resident(ckpt) = &slot.slot else {
                continue;
            };
            let handle = env
                .manager
                .write_checkpoint(&format!("checkpoint:{key}"), ckpt)?;
            if let Some(region) = slot.region {
                env.accountant.note_spilled(region);
            }
            slot.slot = Slot::Spilled(handle);
            spilled = true;
        }
        Ok(spilled)
    }

    /// Drop the snapshots for `loop_id` (loop finished cleanly). The
    /// loop's durable checkpoint files go with them — a finished loop has
    /// nothing to resume.
    pub fn remove(&self, loop_id: &str) {
        let env = self.spill_env();
        let key = loop_id.to_ascii_lowercase();
        if let Some(entry) = self.slots.write().remove(&key) {
            self.release(&env, entry);
        }
        self.durable.write().remove(&key);
    }

    /// Drop every snapshot (end of query). With a journal attached, the
    /// statement's entry is erased too: reaching this point means the
    /// query completed (or failed) in-process, so a later restart must
    /// not re-run it.
    pub fn clear(&self) {
        let env = self.spill_env();
        for (_, entry) in self.slots.write().drain() {
            self.release(&env, entry);
        }
        self.durable.write().clear();
        self.resume.write().clear();
        if let Some(ctx) = self.journal.write().take() {
            ctx.journal.finish(ctx.query_id);
        }
    }

    /// Number of loops with a live snapshot.
    pub fn len(&self) -> usize {
        self.slots.read().len()
    }

    /// True when no loop has a live snapshot.
    pub fn is_empty(&self) -> bool {
        self.slots.read().is_empty()
    }

    /// Number of snapshots currently spilled to disk, counting both
    /// epochs of each loop (observability/tests).
    pub fn spilled_count(&self) -> usize {
        self.slots
            .read()
            .values()
            .flat_map(|e| std::iter::once(&e.current).chain(e.previous.as_ref()))
            .filter(|s| matches!(s.slot, Slot::Spilled(_)))
            .count()
    }

    /// Lifetime count of snapshots saved (observability; survives
    /// [`clear`](Self::clear)).
    pub fn checkpoints_taken(&self) -> u64 {
        self.taken.load(Ordering::Relaxed)
    }

    /// Lifetime sum of estimated snapshot bytes (observability; survives
    /// [`clear`](Self::clear)).
    pub fn bytes_snapshotted(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{row_of, DataType, Field, Schema, Value};
    use std::sync::Arc;

    fn part_with(n: i64) -> Partitioned {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        Partitioned::from_rows(
            schema,
            (0..n).map(|i| row_of([Value::Int(i)])).collect(),
            Some(0),
            2,
        )
    }

    fn ckpt(iteration: u64, updates: u64, rows: i64) -> LoopCheckpoint {
        LoopCheckpoint {
            iteration,
            cumulative_updates: updates,
            tables: vec![("pr".into(), part_with(rows))],
        }
    }

    #[test]
    fn save_latest_roundtrip_and_replace() {
        let store = CheckpointStore::new();
        assert!(store.latest("pr").unwrap().is_none());
        store.save("PR", ckpt(0, 0, 3));
        store.save("pr", ckpt(5, 42, 4));
        let latest = store.latest("pr").unwrap().expect("snapshot");
        assert_eq!(latest.iteration, 5);
        assert_eq!(latest.cumulative_updates, 42);
        assert_eq!(latest.tables[0].1.total_rows(), 4);
        assert_eq!(store.len(), 1);
        assert_eq!(store.current_epoch("pr"), Some(2));
        assert_eq!(store.checkpoints_taken(), 2);
        assert!(store.bytes_snapshotted() > 0);
        store.remove("pr");
        assert!(store.is_empty());
        // Lifetime counters survive removal.
        assert_eq!(store.checkpoints_taken(), 2);
    }

    /// A snapshot must share row buffers with the live table (O(P) Arc
    /// bumps), not copy rows — this is what makes checkpointing cheap
    /// enough to run every iteration.
    #[test]
    fn snapshots_share_buffers_copy_on_write() {
        let live = part_with(100);
        let buf_ptr = Arc::as_ptr(&live.parts[0]);
        let store = CheckpointStore::new();
        store.save(
            "pr",
            LoopCheckpoint {
                iteration: 1,
                cumulative_updates: 100,
                tables: vec![("pr".into(), live.clone())],
            },
        );
        drop(live); // the live table moves on; the snapshot keeps the buffer
        let restored = store.latest("pr").unwrap().unwrap();
        assert_eq!(Arc::as_ptr(&restored.tables[0].1.parts[0]), buf_ptr);
        assert_eq!(restored.tables[0].1.total_rows(), 100);
    }

    #[test]
    fn estimated_bytes_sums_tables() {
        let snapshot = LoopCheckpoint {
            iteration: 0,
            cumulative_updates: 0,
            tables: vec![("a".into(), part_with(2)), ("b".into(), part_with(3))],
        };
        assert_eq!(
            snapshot.estimated_bytes(),
            part_with(2).estimated_bytes() + part_with(3).estimated_bytes()
        );
    }

    #[test]
    fn spilled_checkpoint_rehydrates_on_latest() {
        let store = CheckpointStore::new();
        store.set_spill(Some(Arc::new(SpillEnv::new(1, None, None))));
        store.save("pr", ckpt(7, 21, 9));
        assert!(store.spill_entry("pr").unwrap());
        assert_eq!(store.spilled_count(), 1);
        let env = store.spill_env().unwrap();
        assert_eq!(env.accountant.resident_bytes(), 0);
        let back = store.latest("pr").unwrap().expect("snapshot");
        assert_eq!(back.iteration, 7);
        assert_eq!(back.cumulative_updates, 21);
        assert_eq!(back.tables[0].1.total_rows(), 9);
        assert_eq!(store.spilled_count(), 0);
        assert!(env.accountant.resident_bytes() > 0);
    }

    /// Two-epoch retention: replacing a spilled snapshot demotes it to
    /// the fallback slot (still spilled, still charged zero resident
    /// bytes); the third save finally frees it.
    #[test]
    fn replacing_a_spilled_snapshot_demotes_then_releases_it() {
        let store = CheckpointStore::new();
        store.set_spill(Some(Arc::new(SpillEnv::new(1, None, None))));
        store.save("pr", ckpt(1, 5, 4));
        assert!(store.spill_entry("pr").unwrap());
        store.save("pr", ckpt(2, 8, 6));
        // The spilled epoch 1 is retained as the fallback.
        assert_eq!(store.spilled_count(), 1);
        let env = store.spill_env().unwrap();
        // Only the new resident snapshot is charged.
        assert_eq!(
            env.accountant.resident_bytes(),
            ckpt(2, 8, 6).estimated_bytes()
        );
        store.save("pr", ckpt(3, 9, 8));
        // Epoch 1 is gone; epoch 2 (resident) is the fallback.
        assert_eq!(store.spilled_count(), 0);
        assert_eq!(store.current_epoch("pr"), Some(3));
        store.clear();
        assert_eq!(env.accountant.resident_bytes(), 0);
    }

    /// A corrupt newest epoch falls back to the previous epoch; the bad
    /// epoch's file and region are discarded.
    #[test]
    fn corrupt_current_epoch_falls_back_to_previous() {
        let store = CheckpointStore::new();
        store.set_spill(Some(Arc::new(SpillEnv::new(1, None, None))));
        store.save("pr", ckpt(4, 10, 5));
        store.save("pr", ckpt(8, 20, 7));
        assert!(store.spill_entry("pr").unwrap());
        assert_eq!(store.spilled_count(), 2);
        // Mangle the newest epoch's file on disk.
        {
            let slots = store.slots.read();
            let entry = slots.get("pr").unwrap();
            let Slot::Spilled(handle) = &entry.current.slot else {
                panic!("current must be spilled");
            };
            std::fs::write(handle.path(), b"garbage").unwrap();
        }
        let back = store.latest("pr").unwrap().expect("fallback epoch");
        assert_eq!(back.iteration, 4, "must fall back to the older epoch");
        assert_eq!(back.cumulative_updates, 10);
        assert_eq!(store.current_epoch("pr"), Some(1));
        // The fallback is the only epoch left.
        let slots = store.slots.read();
        assert!(slots.get("pr").unwrap().previous.is_none());
    }

    /// With a journal attached, every save persists an adoptable epoch
    /// file and records it; the clean-completion paths erase both again.
    #[test]
    fn journaled_saves_persist_epoch_files_and_clear_erases_them() {
        use crate::journal::{JournalEntry, QueryJournal};
        let dir = std::env::temp_dir().join(format!("spinner_ckpt_jrl_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = CheckpointStore::new();
        store.set_spill(Some(Arc::new(SpillEnv::new(
            u64::MAX,
            Some(dir.to_str().unwrap()),
            None,
        ))));
        let journal = Arc::new(QueryJournal::new(&dir, 77, false));
        journal.begin(JournalEntry {
            query_id: 5,
            sql: "select".into(),
            settings: vec![],
            loop_key: "pr".into(),
            epochs: vec![],
            inputs: vec![],
        });
        store.set_journal(Arc::clone(&journal), 5);
        for i in 1..=3 {
            store.save("pr", ckpt(i, i, 3));
        }
        // Two newest epochs on disk + journaled, older files deleted.
        let entries = QueryJournal::load(journal.path()).unwrap();
        assert_eq!(entries[0].epochs.len(), 2);
        assert_eq!(entries[0].epochs[0].epoch, 3);
        assert_eq!(entries[0].epochs[0].iteration, 3);
        let on_disk: Vec<_> = entries[0]
            .epochs
            .iter()
            .map(|e| dir.join(&e.file))
            .collect();
        for p in &on_disk {
            assert!(p.exists(), "journaled epoch file must exist: {p:?}");
            let back = crate::spill::read_checkpoint_file(p, "pr").unwrap();
            assert!(back.iteration >= 2);
        }
        store.clear();
        assert!(journal.is_empty(), "clear must finish the journal entry");
        for p in &on_disk {
            assert!(!p.exists(), "clear must delete durable epoch files");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Seeds staged by adoption are consumed exactly once, by loop key.
    #[test]
    fn resume_seed_is_one_shot() {
        let store = CheckpointStore::new();
        assert!(store.take_resume("pr").is_none());
        store.prime_resume(
            "PR",
            ResumeSeed {
                checkpoint: ckpt(6, 12, 4),
                adopted_epoch: 2,
                journal_iteration: 8,
            },
        );
        let seed = store.take_resume("pr").expect("staged seed");
        assert_eq!(seed.checkpoint.iteration, 6);
        assert_eq!(seed.adopted_epoch, 2);
        assert_eq!(seed.journal_iteration, 8);
        assert!(store.take_resume("pr").is_none(), "one-shot");
    }

    /// With every epoch corrupt, the typed error propagates — recovery
    /// sees `StorageCorrupt`, never a silent "no checkpoint".
    #[test]
    fn all_epochs_corrupt_is_a_typed_error() {
        let store = CheckpointStore::new();
        store.set_spill(Some(Arc::new(SpillEnv::new(1, None, None))));
        store.save("pr", ckpt(1, 1, 3));
        store.save("pr", ckpt(2, 2, 4));
        assert!(store.spill_entry("pr").unwrap());
        {
            let slots = store.slots.read();
            let entry = slots.get("pr").unwrap();
            for slot in std::iter::once(&entry.current).chain(entry.previous.as_ref()) {
                let Slot::Spilled(handle) = &slot.slot else {
                    panic!("both epochs must be spilled");
                };
                std::fs::write(handle.path(), b"garbage").unwrap();
            }
        }
        assert!(matches!(
            store.latest("pr"),
            Err(Error::StorageCorrupt { .. })
        ));
    }
}
