//! Iteration-boundary checkpoints for mid-loop recovery.
//!
//! The insight (shared with Flink's iterative dataflows and REX): at the
//! top of a loop iteration, the CTE table plus the loop counters are a
//! *complete* recovery point — nothing else in the executor carries loop
//! state. A [`CheckpointStore`] keeps the latest such snapshot per running
//! loop; after a transient failure the executor restores the snapshot into
//! the temp registry and replays from the checkpointed iteration instead
//! of restarting the whole query.
//!
//! Snapshots are cheap by construction: [`Partitioned`] stores each
//! partition as an immutable `Arc<Vec<Row>>`, so cloning a table is O(P)
//! pointer bumps (copy-on-write) — a checkpoint of a rename-path working
//! table costs pointers, not rows.
//!
//! Under memory pressure a snapshot is a prime spill victim: it is touched
//! only on save and on rollback, so the accountant ranks checkpoints just
//! after common-result tables in coldest-first order. A spilled snapshot is
//! rehydrated by [`CheckpointStore::latest`] — which is why that method is
//! fallible: the read back from disk can hit a fault, and recovery treats
//! that as a transient error, never as "no checkpoint, silently restart".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use spinner_common::memory::{RegionId, RegionKind};
use spinner_common::Result;

use crate::partition::Partitioned;
use crate::spill::{SpillEnv, SpillHandle};

/// A consistent snapshot of one loop's recoverable state, taken at an
/// iteration boundary.
#[derive(Debug, Clone)]
pub struct LoopCheckpoint {
    /// The iteration the snapshot was taken *after* (0 = loop entry, before
    /// the first iteration ran). A rollback replays from `iteration + 1`.
    pub iteration: u64,
    /// Cumulative updated-rows counter at the boundary (feeds the
    /// `UNTIL`-style termination checks and the stats counters).
    pub cumulative_updates: u64,
    /// The temp-registry entries captured: the CTE table and, for
    /// fixed-point loops, the delta table.
    pub tables: Vec<(String, Partitioned)>,
}

impl LoopCheckpoint {
    /// Estimated bytes held alive by this snapshot (shared with the live
    /// tables until either side is replaced — see module docs).
    pub fn estimated_bytes(&self) -> u64 {
        self.tables.iter().map(|(_, d)| d.estimated_bytes()).sum()
    }
}

#[derive(Debug)]
enum Slot {
    Resident(LoopCheckpoint),
    Spilled(SpillHandle),
}

#[derive(Debug)]
struct Entry {
    slot: Slot,
    region: Option<RegionId>,
}

/// Per-query store of the latest checkpoint of each running loop, keyed by
/// the loop's internal CTE name.
///
/// Writes replace the slot atomically under one lock acquisition, so a
/// failure *while building* a snapshot (the caller clones tables before
/// calling [`save`](Self::save)) leaves the previous checkpoint — and the
/// live loop state — untouched.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    slots: RwLock<HashMap<String, Entry>>,
    taken: AtomicU64,
    bytes: AtomicU64,
    spill: RwLock<Option<Arc<SpillEnv>>>,
}

impl CheckpointStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or remove) the spill environment. With one installed,
    /// snapshots are charged to the memory accountant and may be spilled.
    pub fn set_spill(&self, env: Option<Arc<SpillEnv>>) {
        *self.spill.write() = env;
    }

    /// The installed spill environment, if any.
    pub fn spill_env(&self) -> Option<Arc<SpillEnv>> {
        self.spill.read().clone()
    }

    fn release(&self, env: &Option<Arc<SpillEnv>>, entry: Entry) {
        if let (Some(env), Some(region)) = (env, entry.region) {
            env.accountant.release(region);
        }
    }

    /// Install `checkpoint` as the latest snapshot for `loop_id`,
    /// replacing (and freeing) any previous one.
    pub fn save(&self, loop_id: &str, checkpoint: LoopCheckpoint) {
        self.taken.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(checkpoint.estimated_bytes(), Ordering::Relaxed);
        let key = loop_id.to_ascii_lowercase();
        let env = self.spill_env();
        let region = env.as_ref().map(|e| {
            e.accountant.register(
                &format!("checkpoint:{key}"),
                RegionKind::Checkpoint,
                checkpoint.estimated_bytes(),
            )
        });
        let entry = Entry {
            slot: Slot::Resident(checkpoint),
            region,
        };
        if let Some(old) = self.slots.write().insert(key, entry) {
            self.release(&env, old);
        }
    }

    /// The latest snapshot for `loop_id`, if one was saved. O(tables) Arc
    /// bumps when resident; a spilled snapshot is read back from disk
    /// first, which can fail — a failed read surfaces as a (typed,
    /// transient) error rather than `None`, so recovery never mistakes a
    /// lost disk file for "no checkpoint was taken".
    pub fn latest(&self, loop_id: &str) -> Result<Option<LoopCheckpoint>> {
        let key = loop_id.to_ascii_lowercase();
        {
            let slots = self.slots.read();
            match slots.get(&key) {
                None => return Ok(None),
                Some(Entry {
                    slot: Slot::Resident(ckpt),
                    region,
                }) => {
                    if let (Some(env), Some(region)) = (self.spill_env(), region) {
                        env.accountant.touch(*region);
                    }
                    return Ok(Some(ckpt.clone()));
                }
                Some(Entry {
                    slot: Slot::Spilled(_),
                    ..
                }) => {}
            }
        }
        self.rehydrate(&key)
    }

    fn rehydrate(&self, key: &str) -> Result<Option<LoopCheckpoint>> {
        let Some(env) = self.spill_env() else {
            // Spilled slots only exist when an environment was installed;
            // if it was torn down since, the snapshot is unrecoverable.
            return Ok(None);
        };
        let mut slots = self.slots.write();
        let Some(entry) = slots.get_mut(key) else {
            return Ok(None);
        };
        match &entry.slot {
            Slot::Resident(ckpt) => Ok(Some(ckpt.clone())),
            Slot::Spilled(handle) => {
                let ckpt = env
                    .manager
                    .read_checkpoint(handle, &format!("checkpoint:{key}"))?;
                if let Some(region) = entry.region {
                    env.accountant.note_rehydrated(region);
                }
                entry.slot = Slot::Resident(ckpt.clone());
                Ok(Some(ckpt))
            }
        }
    }

    /// Serialize a resident snapshot to disk and release its memory.
    /// Missing or already-spilled slots are a no-op returning `Ok(false)`.
    pub fn spill_entry(&self, loop_id: &str) -> Result<bool> {
        let key = loop_id.to_ascii_lowercase();
        let Some(env) = self.spill_env() else {
            return Ok(false);
        };
        let mut slots = self.slots.write();
        let Some(entry) = slots.get_mut(&key) else {
            return Ok(false);
        };
        let Slot::Resident(ckpt) = &entry.slot else {
            return Ok(false);
        };
        let handle = env
            .manager
            .write_checkpoint(&format!("checkpoint:{key}"), ckpt)?;
        if let Some(region) = entry.region {
            env.accountant.note_spilled(region);
        }
        entry.slot = Slot::Spilled(handle);
        Ok(true)
    }

    /// Drop the snapshot for `loop_id` (loop finished cleanly).
    pub fn remove(&self, loop_id: &str) {
        let env = self.spill_env();
        if let Some(entry) = self.slots.write().remove(&loop_id.to_ascii_lowercase()) {
            self.release(&env, entry);
        }
    }

    /// Drop every snapshot (end of query).
    pub fn clear(&self) {
        let env = self.spill_env();
        for (_, entry) in self.slots.write().drain() {
            self.release(&env, entry);
        }
    }

    /// Number of loops with a live snapshot.
    pub fn len(&self) -> usize {
        self.slots.read().len()
    }

    /// True when no loop has a live snapshot.
    pub fn is_empty(&self) -> bool {
        self.slots.read().is_empty()
    }

    /// Number of snapshots currently spilled to disk (observability/tests).
    pub fn spilled_count(&self) -> usize {
        self.slots
            .read()
            .values()
            .filter(|e| matches!(e.slot, Slot::Spilled(_)))
            .count()
    }

    /// Lifetime count of snapshots saved (observability; survives
    /// [`clear`](Self::clear)).
    pub fn checkpoints_taken(&self) -> u64 {
        self.taken.load(Ordering::Relaxed)
    }

    /// Lifetime sum of estimated snapshot bytes (observability; survives
    /// [`clear`](Self::clear)).
    pub fn bytes_snapshotted(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{row_of, DataType, Field, Schema, Value};
    use std::sync::Arc;

    fn part_with(n: i64) -> Partitioned {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        Partitioned::from_rows(
            schema,
            (0..n).map(|i| row_of([Value::Int(i)])).collect(),
            Some(0),
            2,
        )
    }

    fn ckpt(iteration: u64, updates: u64, rows: i64) -> LoopCheckpoint {
        LoopCheckpoint {
            iteration,
            cumulative_updates: updates,
            tables: vec![("pr".into(), part_with(rows))],
        }
    }

    #[test]
    fn save_latest_roundtrip_and_replace() {
        let store = CheckpointStore::new();
        assert!(store.latest("pr").unwrap().is_none());
        store.save("PR", ckpt(0, 0, 3));
        store.save("pr", ckpt(5, 42, 4));
        let latest = store.latest("pr").unwrap().expect("snapshot");
        assert_eq!(latest.iteration, 5);
        assert_eq!(latest.cumulative_updates, 42);
        assert_eq!(latest.tables[0].1.total_rows(), 4);
        assert_eq!(store.len(), 1);
        assert_eq!(store.checkpoints_taken(), 2);
        assert!(store.bytes_snapshotted() > 0);
        store.remove("pr");
        assert!(store.is_empty());
        // Lifetime counters survive removal.
        assert_eq!(store.checkpoints_taken(), 2);
    }

    /// A snapshot must share row buffers with the live table (O(P) Arc
    /// bumps), not copy rows — this is what makes checkpointing cheap
    /// enough to run every iteration.
    #[test]
    fn snapshots_share_buffers_copy_on_write() {
        let live = part_with(100);
        let buf_ptr = Arc::as_ptr(&live.parts[0]);
        let store = CheckpointStore::new();
        store.save(
            "pr",
            LoopCheckpoint {
                iteration: 1,
                cumulative_updates: 100,
                tables: vec![("pr".into(), live.clone())],
            },
        );
        drop(live); // the live table moves on; the snapshot keeps the buffer
        let restored = store.latest("pr").unwrap().unwrap();
        assert_eq!(Arc::as_ptr(&restored.tables[0].1.parts[0]), buf_ptr);
        assert_eq!(restored.tables[0].1.total_rows(), 100);
    }

    #[test]
    fn estimated_bytes_sums_tables() {
        let snapshot = LoopCheckpoint {
            iteration: 0,
            cumulative_updates: 0,
            tables: vec![("a".into(), part_with(2)), ("b".into(), part_with(3))],
        };
        assert_eq!(
            snapshot.estimated_bytes(),
            part_with(2).estimated_bytes() + part_with(3).estimated_bytes()
        );
    }

    #[test]
    fn spilled_checkpoint_rehydrates_on_latest() {
        let store = CheckpointStore::new();
        store.set_spill(Some(Arc::new(SpillEnv::new(1, None, None))));
        store.save("pr", ckpt(7, 21, 9));
        assert!(store.spill_entry("pr").unwrap());
        assert_eq!(store.spilled_count(), 1);
        let env = store.spill_env().unwrap();
        assert_eq!(env.accountant.resident_bytes(), 0);
        let back = store.latest("pr").unwrap().expect("snapshot");
        assert_eq!(back.iteration, 7);
        assert_eq!(back.cumulative_updates, 21);
        assert_eq!(back.tables[0].1.total_rows(), 9);
        assert_eq!(store.spilled_count(), 0);
        assert!(env.accountant.resident_bytes() > 0);
    }

    #[test]
    fn replacing_a_spilled_snapshot_releases_its_region() {
        let store = CheckpointStore::new();
        store.set_spill(Some(Arc::new(SpillEnv::new(1, None, None))));
        store.save("pr", ckpt(1, 5, 4));
        assert!(store.spill_entry("pr").unwrap());
        store.save("pr", ckpt(2, 8, 6));
        assert_eq!(store.spilled_count(), 0);
        let env = store.spill_env().unwrap();
        // Only the new resident snapshot is charged.
        assert_eq!(
            env.accountant.resident_bytes(),
            ckpt(2, 8, 6).estimated_bytes()
        );
        store.clear();
        assert_eq!(env.accountant.resident_bytes(), 0);
    }
}
