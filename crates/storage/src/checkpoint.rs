//! Iteration-boundary checkpoints for mid-loop recovery.
//!
//! The insight (shared with Flink's iterative dataflows and REX): at the
//! top of a loop iteration, the CTE table plus the loop counters are a
//! *complete* recovery point — nothing else in the executor carries loop
//! state. A [`CheckpointStore`] keeps the latest such snapshot per running
//! loop; after a transient failure the executor restores the snapshot into
//! the temp registry and replays from the checkpointed iteration instead
//! of restarting the whole query.
//!
//! Snapshots are cheap by construction: [`Partitioned`] stores each
//! partition as an immutable `Arc<Vec<Row>>`, so cloning a table is O(P)
//! pointer bumps (copy-on-write) — a checkpoint of a rename-path working
//! table costs pointers, not rows.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::partition::Partitioned;

/// A consistent snapshot of one loop's recoverable state, taken at an
/// iteration boundary.
#[derive(Debug, Clone)]
pub struct LoopCheckpoint {
    /// The iteration the snapshot was taken *after* (0 = loop entry, before
    /// the first iteration ran). A rollback replays from `iteration + 1`.
    pub iteration: u64,
    /// Cumulative updated-rows counter at the boundary (feeds the
    /// `UNTIL`-style termination checks and the stats counters).
    pub cumulative_updates: u64,
    /// The temp-registry entries captured: the CTE table and, for
    /// fixed-point loops, the delta table.
    pub tables: Vec<(String, Partitioned)>,
}

impl LoopCheckpoint {
    /// Estimated bytes held alive by this snapshot (shared with the live
    /// tables until either side is replaced — see module docs).
    pub fn estimated_bytes(&self) -> u64 {
        self.tables.iter().map(|(_, d)| d.estimated_bytes()).sum()
    }
}

/// Per-query store of the latest checkpoint of each running loop, keyed by
/// the loop's internal CTE name.
///
/// Writes replace the slot atomically under one lock acquisition, so a
/// failure *while building* a snapshot (the caller clones tables before
/// calling [`save`](Self::save)) leaves the previous checkpoint — and the
/// live loop state — untouched.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    slots: RwLock<HashMap<String, LoopCheckpoint>>,
    taken: AtomicU64,
    bytes: AtomicU64,
}

impl CheckpointStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install `checkpoint` as the latest snapshot for `loop_id`,
    /// replacing (and freeing) any previous one.
    pub fn save(&self, loop_id: &str, checkpoint: LoopCheckpoint) {
        self.taken.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(checkpoint.estimated_bytes(), Ordering::Relaxed);
        self.slots
            .write()
            .insert(loop_id.to_ascii_lowercase(), checkpoint);
    }

    /// The latest snapshot for `loop_id`, if one was saved. O(tables)
    /// Arc bumps.
    pub fn latest(&self, loop_id: &str) -> Option<LoopCheckpoint> {
        self.slots
            .read()
            .get(&loop_id.to_ascii_lowercase())
            .cloned()
    }

    /// Drop the snapshot for `loop_id` (loop finished cleanly).
    pub fn remove(&self, loop_id: &str) {
        self.slots.write().remove(&loop_id.to_ascii_lowercase());
    }

    /// Drop every snapshot (end of query).
    pub fn clear(&self) {
        self.slots.write().clear();
    }

    /// Number of loops with a live snapshot.
    pub fn len(&self) -> usize {
        self.slots.read().len()
    }

    /// True when no loop has a live snapshot.
    pub fn is_empty(&self) -> bool {
        self.slots.read().is_empty()
    }

    /// Lifetime count of snapshots saved (observability; survives
    /// [`clear`](Self::clear)).
    pub fn checkpoints_taken(&self) -> u64 {
        self.taken.load(Ordering::Relaxed)
    }

    /// Lifetime sum of estimated snapshot bytes (observability; survives
    /// [`clear`](Self::clear)).
    pub fn bytes_snapshotted(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{row_of, DataType, Field, Schema, Value};
    use std::sync::Arc;

    fn part_with(n: i64) -> Partitioned {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        Partitioned::from_rows(
            schema,
            (0..n).map(|i| row_of([Value::Int(i)])).collect(),
            Some(0),
            2,
        )
    }

    #[test]
    fn save_latest_roundtrip_and_replace() {
        let store = CheckpointStore::new();
        assert!(store.latest("pr").is_none());
        store.save(
            "PR",
            LoopCheckpoint {
                iteration: 0,
                cumulative_updates: 0,
                tables: vec![("pr".into(), part_with(3))],
            },
        );
        store.save(
            "pr",
            LoopCheckpoint {
                iteration: 5,
                cumulative_updates: 42,
                tables: vec![("pr".into(), part_with(4))],
            },
        );
        let latest = store.latest("pr").expect("snapshot");
        assert_eq!(latest.iteration, 5);
        assert_eq!(latest.cumulative_updates, 42);
        assert_eq!(latest.tables[0].1.total_rows(), 4);
        assert_eq!(store.len(), 1);
        assert_eq!(store.checkpoints_taken(), 2);
        assert!(store.bytes_snapshotted() > 0);
        store.remove("pr");
        assert!(store.is_empty());
        // Lifetime counters survive removal.
        assert_eq!(store.checkpoints_taken(), 2);
    }

    /// A snapshot must share row buffers with the live table (O(P) Arc
    /// bumps), not copy rows — this is what makes checkpointing cheap
    /// enough to run every iteration.
    #[test]
    fn snapshots_share_buffers_copy_on_write() {
        let live = part_with(100);
        let buf_ptr = Arc::as_ptr(&live.parts[0]);
        let store = CheckpointStore::new();
        store.save(
            "pr",
            LoopCheckpoint {
                iteration: 1,
                cumulative_updates: 100,
                tables: vec![("pr".into(), live.clone())],
            },
        );
        drop(live); // the live table moves on; the snapshot keeps the buffer
        let restored = store.latest("pr").unwrap();
        assert_eq!(Arc::as_ptr(&restored.tables[0].1.parts[0]), buf_ptr);
        assert_eq!(restored.tables[0].1.total_rows(), 100);
    }

    #[test]
    fn estimated_bytes_sums_tables() {
        let ckpt = LoopCheckpoint {
            iteration: 0,
            cumulative_updates: 0,
            tables: vec![("a".into(), part_with(2)), ("b".into(), part_with(3))],
        };
        assert_eq!(
            ckpt.estimated_bytes(),
            part_with(2).estimated_bytes() + part_with(3).estimated_bytes()
        );
    }
}
