//! Spill-to-disk for intermediate state under memory pressure.
//!
//! The [`SpillManager`] serializes [`Partitioned`] tables (and whole
//! [`LoopCheckpoint`]s) to files under a configurable directory with a
//! small hand-rolled binary format — the workspace's vendored `serde` is a
//! no-op stub, so the format is written and parsed by hand, like the
//! profile module's JSON. Files preserve the exact partition layout, so a
//! rehydrated table hashes and joins identically to the resident original.
//!
//! A [`SpillHandle`] owns its file and deletes it on drop, so dropping a
//! spilled registry entry (end of query, rename-over, explicit remove)
//! cleans the disk automatically. Fault injection reaches this layer
//! through the engine-installed [`SpillFaultHook`]
//! (`FaultSite::SpillWrite` / `FaultSite::SpillRead`).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spinner_common::memory::{MemoryAccountant, MemoryMetrics, SpillFaultHook};
use spinner_common::{
    row_of, DataType, Error, FaultSite, Field, Result, Row, Schema, SchemaRef, Value,
};

use crate::checkpoint::LoopCheckpoint;
use crate::partition::Partitioned;

/// 8-byte magic + format version prefix of every spill file.
const MAGIC: &[u8; 8] = b"SPNSPILL";
const VERSION: u32 = 1;

/// Distinguishes spill managers within one process so concurrent
/// `Database` instances never collide on file names.
static MANAGER_SEQ: AtomicU64 = AtomicU64::new(0);

/// Everything the spill path needs, bundled so the registry, the
/// checkpoint store and the executor share one accountant and one
/// manager per database.
#[derive(Debug)]
pub struct SpillEnv {
    /// The central memory accountant (region tracking, victim selection).
    pub accountant: MemoryAccountant,
    /// Serializes regions to disk and reads them back.
    pub manager: SpillManager,
}

impl SpillEnv {
    /// Build an environment with a fresh accountant and manager sharing
    /// one metrics sink. `dir = None` uses the OS temp directory.
    pub fn new(
        threshold_bytes: u64,
        dir: Option<&str>,
        hook: Option<Arc<dyn SpillFaultHook>>,
    ) -> Self {
        let metrics = Arc::new(MemoryMetrics::new());
        let dir = dir.map(PathBuf::from).unwrap_or_else(std::env::temp_dir);
        SpillEnv {
            accountant: MemoryAccountant::new(threshold_bytes, Arc::clone(&metrics)),
            manager: SpillManager::new(dir, metrics, hook),
        }
    }

    /// The shared spill/memory metrics sink.
    pub fn metrics(&self) -> &Arc<MemoryMetrics> {
        self.accountant.metrics()
    }
}

/// Owner of one spill file; the file is deleted when the handle drops.
#[derive(Debug)]
pub struct SpillHandle {
    path: PathBuf,
    file_bytes: u64,
}

impl SpillHandle {
    /// On-disk size of the spill file in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Path of the spill file (observability/tests).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SpillHandle {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Writes victim regions to spill files and rehydrates them on demand.
#[derive(Debug)]
pub struct SpillManager {
    dir: PathBuf,
    tag: u64,
    seq: AtomicU64,
    metrics: Arc<MemoryMetrics>,
    hook: Option<Arc<dyn SpillFaultHook>>,
}

impl SpillManager {
    /// Manager writing files under `dir`.
    pub fn new(
        dir: PathBuf,
        metrics: Arc<MemoryMetrics>,
        hook: Option<Arc<dyn SpillFaultHook>>,
    ) -> Self {
        SpillManager {
            dir,
            tag: MANAGER_SEQ.fetch_add(1, Ordering::Relaxed),
            seq: AtomicU64::new(0),
            metrics,
            hook,
        }
    }

    fn hit(&self, site: FaultSite) -> Result<()> {
        match &self.hook {
            Some(h) => h.hit(site),
            None => Ok(()),
        }
    }

    fn next_path(&self, label: &str) -> PathBuf {
        let sanitized: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .take(40)
            .collect();
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        self.dir.join(format!(
            "spinner_spill_{}_{}_{n}_{sanitized}.spn",
            std::process::id(),
            self.tag
        ))
    }

    fn persist(&self, label: &str, payload: Vec<u8>) -> Result<SpillHandle> {
        self.hit(FaultSite::SpillWrite)?;
        let path = self.next_path(label);
        let file_bytes = payload.len() as u64;
        std::fs::write(&path, payload).map_err(|e| Error::SpillUnavailable {
            region: label.to_string(),
            message: e.to_string(),
        })?;
        self.metrics.note_spill_write(file_bytes);
        Ok(SpillHandle { path, file_bytes })
    }

    fn load(&self, handle: &SpillHandle, label: &str) -> Result<Vec<u8>> {
        self.hit(FaultSite::SpillRead)?;
        let bytes = std::fs::read(&handle.path).map_err(|e| Error::SpillUnavailable {
            region: label.to_string(),
            message: e.to_string(),
        })?;
        self.metrics.note_spill_read(bytes.len() as u64);
        Ok(bytes)
    }

    /// Serialize a partitioned table to a spill file.
    pub fn write_partitioned(&self, label: &str, data: &Partitioned) -> Result<SpillHandle> {
        let mut buf = header();
        encode_partitioned(&mut buf, data);
        self.persist(label, buf)
    }

    /// Read a partitioned table back from its spill file.
    pub fn read_partitioned(&self, handle: &SpillHandle, label: &str) -> Result<Partitioned> {
        let bytes = self.load(handle, label)?;
        let mut r = Reader::new(&bytes, label);
        r.header()?;
        let data = r.partitioned()?;
        r.finish()?;
        Ok(data)
    }

    /// Serialize a whole loop checkpoint (counters + named tables).
    pub fn write_checkpoint(&self, label: &str, ckpt: &LoopCheckpoint) -> Result<SpillHandle> {
        let mut buf = header();
        put_u64(&mut buf, ckpt.iteration);
        put_u64(&mut buf, ckpt.cumulative_updates);
        put_u32(&mut buf, ckpt.tables.len() as u32);
        for (name, data) in &ckpt.tables {
            put_str(&mut buf, name);
            encode_partitioned(&mut buf, data);
        }
        self.persist(label, buf)
    }

    /// Read a loop checkpoint back from its spill file.
    pub fn read_checkpoint(&self, handle: &SpillHandle, label: &str) -> Result<LoopCheckpoint> {
        let bytes = self.load(handle, label)?;
        let mut r = Reader::new(&bytes, label);
        r.header()?;
        let iteration = r.u64()?;
        let cumulative_updates = r.u64()?;
        let n_tables = r.u32()? as usize;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let name = r.str()?;
            let data = r.partitioned()?;
            tables.push((name, data));
        }
        r.finish()?;
        Ok(LoopCheckpoint {
            iteration,
            cumulative_updates,
            tables,
        })
    }
}

// ---- encoding ----------------------------------------------------------

fn header() -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(MAGIC);
    put_u32(&mut buf, VERSION);
    buf
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => buf.push(0),
        Some(s) => {
            buf.push(1);
            put_str(buf, s);
        }
    }
}

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
        DataType::Null => 4,
    }
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(2);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            buf.push(3);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            buf.push(4);
            buf.push(u8::from(*b));
        }
    }
}

fn encode_partitioned(buf: &mut Vec<u8>, data: &Partitioned) {
    let fields = data.schema.fields();
    put_u32(buf, fields.len() as u32);
    for f in fields {
        put_str(buf, &f.name);
        buf.push(dtype_tag(f.data_type));
        put_opt_str(buf, f.relation.as_deref());
    }
    put_u32(buf, data.parts.len() as u32);
    for part in &data.parts {
        put_u64(buf, part.len() as u64);
        for row in part.iter() {
            for v in row.iter() {
                put_value(buf, v);
            }
        }
    }
}

// ---- decoding ----------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    label: &'a str,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], label: &'a str) -> Self {
        Reader {
            bytes,
            pos: 0,
            label,
        }
    }

    fn corrupt(&self, what: &str) -> Error {
        Error::SpillUnavailable {
            region: self.label.to_string(),
            message: format!("corrupt spill file: {what} at offset {}", self.pos),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.corrupt("truncated"))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn header(&mut self) -> Result<()> {
        if self.take(8)? != MAGIC {
            return Err(self.corrupt("bad magic"));
        }
        let version = self.u32()?;
        if version != VERSION {
            return Err(self.corrupt("unsupported version"));
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("invalid utf8"))
    }

    fn opt_str(&mut self) -> Result<Option<String>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            _ => Err(self.corrupt("bad option tag")),
        }
    }

    fn dtype(&mut self) -> Result<DataType> {
        Ok(match self.u8()? {
            0 => DataType::Int,
            1 => DataType::Float,
            2 => DataType::Text,
            3 => DataType::Bool,
            4 => DataType::Null,
            _ => return Err(self.corrupt("bad type tag")),
        })
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(i64::from_le_bytes(self.take(8)?.try_into().expect("8"))),
            2 => Value::Float(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().expect("8"),
            ))),
            3 => Value::Text(self.str()?),
            4 => Value::Bool(self.u8()? != 0),
            _ => return Err(self.corrupt("bad value tag")),
        })
    }

    fn partitioned(&mut self) -> Result<Partitioned> {
        let n_fields = self.u32()? as usize;
        let mut fields = Vec::with_capacity(n_fields);
        for _ in 0..n_fields {
            let name = self.str()?;
            let data_type = self.dtype()?;
            let relation = self.opt_str()?;
            let field = match relation {
                Some(r) => Field::qualified(r, name, data_type),
                None => Field::new(name, data_type),
            };
            fields.push(field);
        }
        let schema: SchemaRef = Arc::new(Schema::new(fields));
        let n_parts = self.u32()? as usize;
        let mut parts = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            let n_rows = self.u64()? as usize;
            let mut rows: Vec<Row> = Vec::with_capacity(n_rows.min(1 << 20));
            for _ in 0..n_rows {
                let mut values = Vec::with_capacity(n_fields);
                for _ in 0..n_fields {
                    values.push(self.value()?);
                }
                rows.push(row_of(values));
            }
            parts.push(Arc::new(rows));
        }
        Ok(Partitioned { schema, parts })
    }

    fn finish(&self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(self.corrupt("trailing bytes"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::row_of;

    fn manager() -> SpillManager {
        SpillManager::new(std::env::temp_dir(), Arc::new(MemoryMetrics::new()), None)
    }

    fn sample() -> Partitioned {
        let schema = Arc::new(Schema::new(vec![
            Field::qualified("t", "k", DataType::Int),
            Field::new("v", DataType::Float),
            Field::new("s", DataType::Text),
            Field::new("b", DataType::Bool),
            Field::new("n", DataType::Null),
        ]));
        let rows: Vec<Row> = (0..10)
            .map(|i| {
                row_of([
                    Value::Int(i),
                    Value::Float(i as f64 * 0.5),
                    Value::Text(format!("row {i} \"quoted\"")),
                    Value::Bool(i % 2 == 0),
                    Value::Null,
                ])
            })
            .collect();
        Partitioned::from_rows(schema, rows, Some(0), 3)
    }

    #[test]
    fn partitioned_round_trip_preserves_layout_and_values() {
        let m = manager();
        let data = sample();
        let handle = m.write_partitioned("__cte_pr_1", &data).unwrap();
        assert!(handle.path().exists());
        assert!(handle.file_bytes() > 0);
        let back = m.read_partitioned(&handle, "__cte_pr_1").unwrap();
        assert_eq!(back.schema, data.schema);
        assert_eq!(back.parts.len(), data.parts.len());
        for (a, b) in back.parts.iter().zip(data.parts.iter()) {
            assert_eq!(a, b, "partition layout must survive the round trip");
        }
        let path = handle.path().to_path_buf();
        drop(handle);
        assert!(!path.exists(), "drop must delete the spill file");
    }

    #[test]
    fn checkpoint_round_trip() {
        let m = manager();
        let ckpt = LoopCheckpoint {
            iteration: 7,
            cumulative_updates: 99,
            tables: vec![
                ("__cte_pr_1".into(), sample()),
                ("__delta_pr".into(), sample()),
            ],
        };
        let handle = m.write_checkpoint("pr", &ckpt).unwrap();
        let back = m.read_checkpoint(&handle, "pr").unwrap();
        assert_eq!(back.iteration, 7);
        assert_eq!(back.cumulative_updates, 99);
        assert_eq!(back.tables.len(), 2);
        assert_eq!(back.tables[0].0, "__cte_pr_1");
        assert_eq!(back.tables[1].1.parts, ckpt.tables[1].1.parts);
    }

    #[test]
    fn metrics_count_bytes_both_ways() {
        let metrics = Arc::new(MemoryMetrics::new());
        let m = SpillManager::new(std::env::temp_dir(), Arc::clone(&metrics), None);
        let handle = m.write_partitioned("x", &sample()).unwrap();
        let _ = m.read_partitioned(&handle, "x").unwrap();
        let c = metrics.drain();
        assert_eq!(c.spill_events, 1);
        assert_eq!(c.spill_bytes_written, handle.file_bytes());
        assert_eq!(c.spill_bytes_read, handle.file_bytes());
    }

    #[test]
    fn corrupt_file_is_a_typed_error() {
        let m = manager();
        let handle = m.write_partitioned("x", &sample()).unwrap();
        std::fs::write(handle.path(), b"not a spill file").unwrap();
        match m.read_partitioned(&handle, "x") {
            Err(Error::SpillUnavailable { region, message }) => {
                assert_eq!(region, "x");
                assert!(message.contains("corrupt"), "{message}");
            }
            other => panic!("expected SpillUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_a_typed_error() {
        let m = manager();
        let handle = m.write_partitioned("x", &sample()).unwrap();
        std::fs::remove_file(handle.path()).unwrap();
        assert!(matches!(
            m.read_partitioned(&handle, "x"),
            Err(Error::SpillUnavailable { .. })
        ));
    }

    #[derive(Debug)]
    struct AlwaysFail;
    impl SpillFaultHook for AlwaysFail {
        fn hit(&self, site: FaultSite) -> spinner_common::Result<()> {
            Err(Error::FaultInjected {
                site: format!("{site:?}"),
            })
        }
    }

    #[test]
    fn fault_hook_aborts_before_any_io() {
        let m = SpillManager::new(
            std::env::temp_dir(),
            Arc::new(MemoryMetrics::new()),
            Some(Arc::new(AlwaysFail)),
        );
        let err = m.write_partitioned("x", &sample()).unwrap_err();
        assert!(matches!(err, Error::FaultInjected { .. }));
    }
}
