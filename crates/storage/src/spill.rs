//! Spill-to-disk for intermediate state under memory pressure, with the
//! disk treated as a failure domain.
//!
//! The [`SpillManager`] serializes [`Partitioned`] tables (and whole
//! [`LoopCheckpoint`]s) to files under a configurable directory with a
//! small hand-rolled binary format — the workspace's vendored `serde` is a
//! no-op stub, so the format is written and parsed by hand, like the
//! profile module's JSON. Files preserve the exact partition layout, so a
//! rehydrated table hashes and joins identically to the resident original.
//!
//! Format v2 (`SPNSPILL`, version 2) assumes the disk lies: every
//! partition's byte range carries an [`xxh64`] checksum, and the whole
//! file ends in a sealed trailer (`body length + body checksum +
//! SPNSEAL\0`). A torn write, truncation, or flipped bit fails
//! verification on read and surfaces as the transient
//! [`Error::StorageCorrupt`], which recovery handles by falling back to
//! an older checkpoint epoch or recomputing the region — never by
//! returning silently wrong rows.
//!
//! Writes are crash consistent: payload → `*.tmp` → fsync → atomic
//! rename → fsync directory (the fsyncs elide when the manager is built
//! with durability off, for tests and throwaway workloads). Every
//! persisted file is recorded in the per-process [`Manifest`], whose
//! orphan GC reclaims files left by crashed processes.
//!
//! A [`SpillHandle`] owns its file and deletes it (and its manifest
//! entry) on drop, so dropping a spilled registry entry (end of query,
//! rename-over, explicit remove) cleans the disk automatically. Fault
//! injection reaches this layer through the engine-installed
//! [`SpillFaultHook`]: `FaultSite::SpillWrite` / `SpillRead` abort I/O
//! outright, while the adversarial-disk sites `TornWrite`, `BitFlip`,
//! `DiskFull` and `FsyncFail` corrupt or fail the write the way a real
//! disk would.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spinner_common::memory::{MemoryAccountant, MemoryMetrics, SpillFaultHook};
use spinner_common::{
    row_of, DataType, Error, FaultSite, Field, Result, Row, Schema, SchemaRef, Value,
};

use crate::checkpoint::LoopCheckpoint;
use crate::manifest::{self, Manifest};
use crate::partition::Partitioned;

/// 8-byte magic + format version prefix of every spill file.
const MAGIC: &[u8; 8] = b"SPNSPILL";
const VERSION: u32 = 2;
/// 8-byte magic closing the trailer; its absence means a torn write.
const TRAILER_MAGIC: &[u8; 8] = b"SPNSEAL\0";
/// Trailer layout: u64 body length + u64 body checksum + trailer magic.
const TRAILER_LEN: usize = 8 + 8 + 8;

/// Distinguishes spill managers within one process so concurrent
/// `Database` instances never collide on file names.
static MANAGER_SEQ: AtomicU64 = AtomicU64::new(0);

// ---- xxh64 -------------------------------------------------------------

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn xxh_round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn xxh_merge(acc: u64, val: u64) -> u64 {
    (acc ^ xxh_round(0, val)).wrapping_mul(P1).wrapping_add(P4)
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
}

/// Hand-rolled XXH64 (seed 0) — the checksum sealing every spill file and
/// manifest. Implemented from the public algorithm spec because the
/// workspace builds offline with no external crates; verified against the
/// reference test vectors in this module's tests.
pub fn xxh64(data: &[u8]) -> u64 {
    let len = data.len() as u64;
    let mut rest = data;
    let mut h = if rest.len() >= 32 {
        let mut v1 = P1.wrapping_add(P2);
        let mut v2 = P2;
        let mut v3 = 0u64;
        let mut v4 = 0u64.wrapping_sub(P1);
        while rest.len() >= 32 {
            v1 = xxh_round(v1, read_u64(&rest[0..]));
            v2 = xxh_round(v2, read_u64(&rest[8..]));
            v3 = xxh_round(v3, read_u64(&rest[16..]));
            v4 = xxh_round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = xxh_merge(h, v1);
        h = xxh_merge(h, v2);
        h = xxh_merge(h, v3);
        xxh_merge(h, v4)
    } else {
        P5
    };
    h = h.wrapping_add(len);
    while rest.len() >= 8 {
        h = (h ^ xxh_round(0, read_u64(rest)))
            .rotate_left(27)
            .wrapping_mul(P1)
            .wrapping_add(P4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        let v = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as u64;
        h = (h ^ v.wrapping_mul(P1))
            .rotate_left(23)
            .wrapping_mul(P2)
            .wrapping_add(P3);
        rest = &rest[4..];
    }
    for &b in rest {
        h = (h ^ (b as u64).wrapping_mul(P5))
            .rotate_left(11)
            .wrapping_mul(P1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^ (h >> 32)
}

/// Everything the spill path needs, bundled so the registry, the
/// checkpoint store and the executor share one accountant and one
/// manager per database.
#[derive(Debug)]
pub struct SpillEnv {
    /// The central memory accountant (region tracking, victim selection).
    pub accountant: MemoryAccountant,
    /// Serializes regions to disk and reads them back.
    pub manager: SpillManager,
}

impl SpillEnv {
    /// Build an environment with a fresh accountant and manager sharing
    /// one metrics sink. `dir = None` uses the OS temp directory.
    /// Durability (fsync-on-write) defaults on; see
    /// [`with_durable`](Self::with_durable).
    pub fn new(
        threshold_bytes: u64,
        dir: Option<&str>,
        hook: Option<Arc<dyn SpillFaultHook>>,
    ) -> Self {
        let metrics = Arc::new(MemoryMetrics::new());
        let dir = dir.map(PathBuf::from).unwrap_or_else(std::env::temp_dir);
        SpillEnv {
            accountant: MemoryAccountant::new(threshold_bytes, Arc::clone(&metrics)),
            manager: SpillManager::new(dir, metrics, hook),
        }
    }

    /// Set whether writes run the full fsync protocol (builder style).
    pub fn with_durable(mut self, durable: bool) -> Self {
        self.manager.durable = durable;
        self
    }

    /// The shared spill/memory metrics sink.
    pub fn metrics(&self) -> &Arc<MemoryMetrics> {
        self.accountant.metrics()
    }
}

/// Owner of one spill file; the file (and its manifest entry) is removed
/// when the handle drops.
#[derive(Debug)]
pub struct SpillHandle {
    path: PathBuf,
    file_bytes: u64,
    manifest: Option<Arc<Manifest>>,
}

impl SpillHandle {
    /// On-disk size of the spill file in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Path of the spill file (observability/tests).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SpillHandle {
    fn drop(&mut self) {
        match std::fs::remove_file(&self.path) {
            Ok(()) => {}
            // Already gone (vanished-dir race, GC, test tampering): the
            // desired end state holds, nothing to report.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            // Any other failure is best-effort: orphan GC reclaims the
            // file once this process exits.
            Err(_) => {}
        }
        if let Some(manifest) = self.manifest.take() {
            manifest.remove_file(&self.path);
        }
    }
}

/// Writes victim regions to spill files and rehydrates them on demand.
#[derive(Debug)]
pub struct SpillManager {
    dir: PathBuf,
    tag: u64,
    seq: AtomicU64,
    metrics: Arc<MemoryMetrics>,
    hook: Option<Arc<dyn SpillFaultHook>>,
    durable: bool,
    manifest: Arc<Manifest>,
}

impl SpillManager {
    /// Manager writing files under `dir`, durability on.
    pub fn new(
        dir: PathBuf,
        metrics: Arc<MemoryMetrics>,
        hook: Option<Arc<dyn SpillFaultHook>>,
    ) -> Self {
        let tag = MANAGER_SEQ.fetch_add(1, Ordering::Relaxed);
        let manifest = Arc::new(Manifest::new(&dir, tag, Arc::clone(&metrics)));
        SpillManager {
            dir,
            tag,
            seq: AtomicU64::new(0),
            metrics,
            hook,
            durable: true,
            manifest,
        }
    }

    /// Whether writes run the full fsync protocol.
    pub fn durable(&self) -> bool {
        self.durable
    }

    /// Process-unique tag embedded in this manager's file names. The
    /// engine's query journal shares it so one directory can host
    /// several engines per process without name collisions.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// The per-process manifest tracking this manager's on-disk state.
    pub fn manifest(&self) -> &Arc<Manifest> {
        &self.manifest
    }

    /// Remove spill/manifest files left in this manager's directory by
    /// dead processes. Returns the number of files reclaimed.
    pub fn recover_orphans(&self) -> u64 {
        manifest::gc_orphans(&self.dir)
    }

    pub(crate) fn hit(&self, site: FaultSite) -> Result<()> {
        match &self.hook {
            Some(h) => h.hit(site),
            None => Ok(()),
        }
    }

    fn next_path(&self, label: &str) -> PathBuf {
        let sanitized: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .take(40)
            .collect();
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        self.dir.join(format!(
            "spinner_spill_{}_{}_{n}_{sanitized}.spn",
            std::process::id(),
            self.tag
        ))
    }

    /// Seal `payload` and write it crash-consistently: temp file → fsync →
    /// atomic rename → fsync dir. The adversarial fault sites model a
    /// lying disk — `TornWrite`/`BitFlip` corrupt the payload *and still
    /// report success* (detection is the reader's job), `DiskFull` fails
    /// as ENOSPC, `FsyncFail` loses the temp file at the sync barrier.
    fn persist(&self, label: &str, mut payload: Vec<u8>) -> Result<SpillHandle> {
        self.hit(FaultSite::SpillWrite)?;
        seal(&mut payload);
        if self.hit(FaultSite::DiskFull).is_err() {
            return Err(disk_full(payload.len() as u64));
        }
        if self.hit(FaultSite::TornWrite).is_err() {
            payload.truncate(payload.len() / 2);
        }
        if self.hit(FaultSite::BitFlip).is_err() {
            let mid = payload.len() / 2;
            if let Some(b) = payload.get_mut(mid) {
                *b ^= 0x10;
            }
        }
        let file_bytes = payload.len() as u64;
        let path = self.next_path(label);
        let tmp = path.with_extension("tmp");
        let fail = |tmp: &Path, e: std::io::Error| {
            let _ = std::fs::remove_file(tmp);
            map_write_error(label, e, file_bytes)
        };
        std::fs::write(&tmp, &payload).map_err(|e| fail(&tmp, e))?;
        if self.durable {
            if self.hit(FaultSite::FsyncFail).is_err() {
                let _ = std::fs::remove_file(&tmp);
                return Err(Error::SpillUnavailable {
                    region: label.to_string(),
                    message: "fsync failed; temp file discarded".to_string(),
                });
            }
            std::fs::File::open(&tmp)
                .and_then(|f| f.sync_all())
                .map_err(|e| fail(&tmp, e))?;
            self.metrics.note_fsync();
        }
        std::fs::rename(&tmp, &path).map_err(|e| fail(&tmp, e))?;
        if self.durable && manifest::parent_dir_sync(&path).is_ok() {
            self.metrics.note_fsync();
        }
        self.manifest.record_file(&path, file_bytes, self.durable);
        self.metrics.note_spill_write(file_bytes);
        Ok(SpillHandle {
            path,
            file_bytes,
            manifest: Some(Arc::clone(&self.manifest)),
        })
    }

    fn load(&self, handle: &SpillHandle, label: &str) -> Result<Vec<u8>> {
        self.hit(FaultSite::SpillRead)?;
        match std::fs::read(&handle.path) {
            Ok(bytes) => {
                self.metrics.note_spill_read(bytes.len() as u64);
                Ok(bytes)
            }
            // A missing or unreadable file is lost on-disk state, exactly
            // like a corrupt one: transient, recovery falls back.
            Err(e) => {
                self.metrics.note_corrupt_detected();
                Err(Error::StorageCorrupt {
                    region: label.to_string(),
                    message: format!("spill file unreadable: {e}"),
                })
            }
        }
    }

    /// Count the outcome of a verified decode: every fully checked read
    /// bumps `verified_reads`; every detected corruption bumps
    /// `corrupt_detected` (the `durability:` line in EXPLAIN ANALYZE).
    fn note_decode<T>(&self, decoded: Result<T>) -> Result<T> {
        match &decoded {
            Ok(_) => self.metrics.note_verified_read(),
            Err(Error::StorageCorrupt { .. }) => self.metrics.note_corrupt_detected(),
            Err(_) => {}
        }
        decoded
    }

    /// Serialize a partitioned table to a spill file.
    pub fn write_partitioned(&self, label: &str, data: &Partitioned) -> Result<SpillHandle> {
        let mut buf = header();
        encode_partitioned(&mut buf, data);
        self.persist(label, buf)
    }

    /// Read a partitioned table back from its spill file, verifying every
    /// checksum along the way.
    pub fn read_partitioned(&self, handle: &SpillHandle, label: &str) -> Result<Partitioned> {
        let bytes = self.load(handle, label)?;
        self.note_decode(decode_partitioned_bytes(&bytes, label))
    }

    /// Serialize a whole loop checkpoint (counters + named tables).
    pub fn write_checkpoint(&self, label: &str, ckpt: &LoopCheckpoint) -> Result<SpillHandle> {
        let mut buf = header();
        put_u64(&mut buf, ckpt.iteration);
        put_u64(&mut buf, ckpt.cumulative_updates);
        put_u32(&mut buf, ckpt.tables.len() as u32);
        for (name, data) in &ckpt.tables {
            put_str(&mut buf, name);
            encode_partitioned(&mut buf, data);
        }
        self.persist(label, buf)
    }

    /// Read a loop checkpoint back from its spill file, verifying every
    /// checksum along the way.
    pub fn read_checkpoint(&self, handle: &SpillHandle, label: &str) -> Result<LoopCheckpoint> {
        let bytes = self.load(handle, label)?;
        self.note_decode(decode_checkpoint_bytes(&bytes, label))
    }
}

/// Read and fully verify a partitioned table directly from `path`, without
/// a [`SpillManager`] or [`SpillHandle`]. The restart adoption pass uses
/// this to rehydrate a *dead* process's files — there is no live handle to
/// own them, and they must be read before orphan GC reclaims them. Any
/// failure (unreadable, torn, truncated, bit-rotted) is the typed
/// [`Error::StorageCorrupt`], never silently wrong rows.
pub fn read_partitioned_file(path: &Path, label: &str) -> Result<Partitioned> {
    decode_partitioned_bytes(&read_file(path, label)?, label)
}

/// Read and fully verify a loop checkpoint directly from `path` (see
/// [`read_partitioned_file`] for why this exists handle-free).
pub fn read_checkpoint_file(path: &Path, label: &str) -> Result<LoopCheckpoint> {
    decode_checkpoint_bytes(&read_file(path, label)?, label)
}

fn read_file(path: &Path, label: &str) -> Result<Vec<u8>> {
    std::fs::read(path).map_err(|e| Error::StorageCorrupt {
        region: label.to_string(),
        message: format!("spill file unreadable: {e}"),
    })
}

fn decode_partitioned_bytes(bytes: &[u8], label: &str) -> Result<Partitioned> {
    let mut r = Reader::new(bytes, label)?;
    r.header()?;
    let data = r.partitioned()?;
    r.finish()?;
    Ok(data)
}

fn decode_checkpoint_bytes(bytes: &[u8], label: &str) -> Result<LoopCheckpoint> {
    let mut r = Reader::new(bytes, label)?;
    r.header()?;
    let iteration = r.u64()?;
    let cumulative_updates = r.u64()?;
    let n_tables = r.u32()? as usize;
    let mut tables = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let name = r.str()?;
        let data = r.partitioned()?;
        tables.push((name, data));
    }
    r.finish()?;
    Ok(LoopCheckpoint {
        iteration,
        cumulative_updates,
        tables,
    })
}

fn disk_full(bytes: u64) -> Error {
    Error::ResourceExhausted {
        resource: "spill_disk".to_string(),
        used: bytes,
        limit: 0,
    }
}

/// ENOSPC degrades to the PR-4 fail-fast budget semantics
/// (`ResourceExhausted`, fatal) instead of aborting the process or
/// looping retries against a full disk; everything else is the transient
/// `SpillUnavailable`.
fn map_write_error(label: &str, e: std::io::Error, bytes: u64) -> Error {
    if e.raw_os_error() == Some(28) {
        return disk_full(bytes);
    }
    Error::SpillUnavailable {
        region: label.to_string(),
        message: e.to_string(),
    }
}

// ---- encoding ----------------------------------------------------------

pub(crate) fn header() -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(MAGIC);
    put_u32(&mut buf, VERSION);
    put_u32(&mut buf, 0); // flags, reserved
    buf
}

/// Append the whole-file trailer: body length + body checksum + seal
/// magic. Verification order on read is the reverse — magic (torn
/// write?), length (truncation?), checksum (bit rot?).
pub(crate) fn seal(buf: &mut Vec<u8>) {
    let body_len = buf.len() as u64;
    let sum = xxh64(buf);
    put_u64(buf, body_len);
    put_u64(buf, sum);
    buf.extend_from_slice(TRAILER_MAGIC);
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => buf.push(0),
        Some(s) => {
            buf.push(1);
            put_str(buf, s);
        }
    }
}

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
        DataType::Null => 4,
    }
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(2);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            buf.push(3);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            buf.push(4);
            buf.push(u8::from(*b));
        }
    }
}

fn encode_partitioned(buf: &mut Vec<u8>, data: &Partitioned) {
    let fields = data.schema.fields();
    put_u32(buf, fields.len() as u32);
    for f in fields {
        put_str(buf, &f.name);
        buf.push(dtype_tag(f.data_type));
        put_opt_str(buf, f.relation.as_deref());
    }
    put_u32(buf, data.parts.len() as u32);
    for part in &data.parts {
        // Each partition's byte range is individually checksummed so a
        // verified read never hands back a partition the disk mangled.
        let start = buf.len();
        put_u64(buf, part.len() as u64);
        for row in part.iter() {
            for v in row.iter() {
                put_value(buf, v);
            }
        }
        let sum = xxh64(&buf[start..]);
        put_u64(buf, sum);
    }
}

// ---- decoding ----------------------------------------------------------

pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    label: &'a str,
}

impl<'a> Reader<'a> {
    /// Verify the trailer before parsing a single body byte: seal magic
    /// present (else torn write), recorded body length matches (else
    /// truncation), whole-body checksum matches (else bit rot). The
    /// returned reader only ever sees the verified body.
    pub(crate) fn new(bytes: &'a [u8], label: &'a str) -> Result<Self> {
        let corrupt = |pos: usize, what: &str| Error::StorageCorrupt {
            region: label.to_string(),
            message: format!("corrupt spill file: {what} at offset {pos}"),
        };
        if bytes.len() < TRAILER_LEN {
            return Err(corrupt(bytes.len(), "truncated before trailer"));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - TRAILER_LEN);
        if &trailer[16..24] != TRAILER_MAGIC {
            return Err(corrupt(bytes.len(), "missing trailer seal (torn write)"));
        }
        if read_u64(&trailer[0..8]) != body.len() as u64 {
            return Err(corrupt(body.len(), "trailer length mismatch (truncated)"));
        }
        if xxh64(body) != read_u64(&trailer[8..16]) {
            return Err(corrupt(0, "whole-file checksum mismatch"));
        }
        Ok(Reader {
            bytes: body,
            pos: 0,
            label,
        })
    }

    fn corrupt(&self, what: &str) -> Error {
        Error::StorageCorrupt {
            region: self.label.to_string(),
            message: format!("corrupt spill file: {what} at offset {}", self.pos),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.corrupt("truncated"))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn header(&mut self) -> Result<()> {
        if self.take(8)? != MAGIC {
            return Err(self.corrupt("bad magic"));
        }
        let version = self.u32()?;
        if version != VERSION {
            return Err(self.corrupt("unsupported version"));
        }
        let flags = self.u32()?;
        if flags != 0 {
            return Err(self.corrupt("unsupported flags"));
        }
        Ok(())
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("invalid utf8"))
    }

    fn opt_str(&mut self) -> Result<Option<String>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            _ => Err(self.corrupt("bad option tag")),
        }
    }

    fn dtype(&mut self) -> Result<DataType> {
        Ok(match self.u8()? {
            0 => DataType::Int,
            1 => DataType::Float,
            2 => DataType::Text,
            3 => DataType::Bool,
            4 => DataType::Null,
            _ => return Err(self.corrupt("bad type tag")),
        })
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(i64::from_le_bytes(self.take(8)?.try_into().expect("8"))),
            2 => Value::Float(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().expect("8"),
            ))),
            3 => Value::Text(self.str()?),
            4 => Value::Bool(self.u8()? != 0),
            _ => return Err(self.corrupt("bad value tag")),
        })
    }

    fn partitioned(&mut self) -> Result<Partitioned> {
        let n_fields = self.u32()? as usize;
        let mut fields = Vec::with_capacity(n_fields);
        for _ in 0..n_fields {
            let name = self.str()?;
            let data_type = self.dtype()?;
            let relation = self.opt_str()?;
            let field = match relation {
                Some(r) => Field::qualified(r, name, data_type),
                None => Field::new(name, data_type),
            };
            fields.push(field);
        }
        let schema: SchemaRef = Arc::new(Schema::new(fields));
        let n_parts = self.u32()? as usize;
        let mut parts = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            let start = self.pos;
            let n_rows = self.u64()? as usize;
            let mut rows: Vec<Row> = Vec::with_capacity(n_rows.min(1 << 20));
            for _ in 0..n_rows {
                let mut values = Vec::with_capacity(n_fields);
                for _ in 0..n_fields {
                    values.push(self.value()?);
                }
                rows.push(row_of(values));
            }
            let sum = xxh64(&self.bytes[start..self.pos]);
            if self.u64()? != sum {
                return Err(self.corrupt("partition checksum mismatch"));
            }
            parts.push(Arc::new(rows));
        }
        Ok(Partitioned { schema, parts })
    }

    pub(crate) fn finish(&self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(self.corrupt("trailing bytes"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::row_of;

    fn manager() -> SpillManager {
        SpillManager::new(std::env::temp_dir(), Arc::new(MemoryMetrics::new()), None)
    }

    fn sample() -> Partitioned {
        let schema = Arc::new(Schema::new(vec![
            Field::qualified("t", "k", DataType::Int),
            Field::new("v", DataType::Float),
            Field::new("s", DataType::Text),
            Field::new("b", DataType::Bool),
            Field::new("n", DataType::Null),
        ]));
        let rows: Vec<Row> = (0..10)
            .map(|i| {
                row_of([
                    Value::Int(i),
                    Value::Float(i as f64 * 0.5),
                    Value::Text(format!("row {i} \"quoted\"")),
                    Value::Bool(i % 2 == 0),
                    Value::Null,
                ])
            })
            .collect();
        Partitioned::from_rows(schema, rows, Some(0), 3)
    }

    /// Reference test vectors from the XXH64 specification.
    #[test]
    fn xxh64_matches_reference_vectors() {
        assert_eq!(xxh64(b""), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"abc"), 0x44BC_2CF5_AD77_0999);
        // Exercise the ≥32-byte striped path and the 8/4/1-byte tails.
        let long: Vec<u8> = (0u8..=255).collect();
        let h = xxh64(&long);
        assert_eq!(h, xxh64(&long), "deterministic");
        assert_ne!(h, xxh64(&long[..255]), "length-sensitive");
    }

    #[test]
    fn partitioned_round_trip_preserves_layout_and_values() {
        let m = manager();
        let data = sample();
        let handle = m.write_partitioned("__cte_pr_1", &data).unwrap();
        assert!(handle.path().exists());
        assert!(handle.file_bytes() > 0);
        let back = m.read_partitioned(&handle, "__cte_pr_1").unwrap();
        assert_eq!(back.schema, data.schema);
        assert_eq!(back.parts.len(), data.parts.len());
        for (a, b) in back.parts.iter().zip(data.parts.iter()) {
            assert_eq!(a, b, "partition layout must survive the round trip");
        }
        let path = handle.path().to_path_buf();
        drop(handle);
        assert!(!path.exists(), "drop must delete the spill file");
    }

    #[test]
    fn checkpoint_round_trip() {
        let m = manager();
        let ckpt = LoopCheckpoint {
            iteration: 7,
            cumulative_updates: 99,
            tables: vec![
                ("__cte_pr_1".into(), sample()),
                ("__delta_pr".into(), sample()),
            ],
        };
        let handle = m.write_checkpoint("pr", &ckpt).unwrap();
        let back = m.read_checkpoint(&handle, "pr").unwrap();
        assert_eq!(back.iteration, 7);
        assert_eq!(back.cumulative_updates, 99);
        assert_eq!(back.tables.len(), 2);
        assert_eq!(back.tables[0].0, "__cte_pr_1");
        assert_eq!(back.tables[1].1.parts, ckpt.tables[1].1.parts);
    }

    #[test]
    fn metrics_count_bytes_both_ways() {
        let metrics = Arc::new(MemoryMetrics::new());
        let m = SpillManager::new(std::env::temp_dir(), Arc::clone(&metrics), None);
        let handle = m.write_partitioned("x", &sample()).unwrap();
        let _ = m.read_partitioned(&handle, "x").unwrap();
        let c = metrics.drain();
        assert_eq!(c.spill_events, 1);
        assert_eq!(c.spill_bytes_written, handle.file_bytes());
        assert_eq!(c.spill_bytes_read, handle.file_bytes());
        assert_eq!(c.verified_reads, 1);
        assert_eq!(c.corrupt_detected, 0);
        assert!(c.fsyncs >= 1, "durable write must fsync");
    }

    #[test]
    fn non_durable_manager_skips_fsync() {
        let env = SpillEnv::new(1, None, None).with_durable(false);
        let handle = env.manager.write_partitioned("x", &sample()).unwrap();
        let _ = env.manager.read_partitioned(&handle, "x").unwrap();
        assert_eq!(env.metrics().drain().fsyncs, 0);
    }

    #[test]
    fn corrupt_file_is_a_typed_error() {
        let m = manager();
        let handle = m.write_partitioned("x", &sample()).unwrap();
        std::fs::write(handle.path(), b"not a spill file").unwrap();
        match m.read_partitioned(&handle, "x") {
            Err(Error::StorageCorrupt { region, message }) => {
                assert_eq!(region, "x");
                assert!(message.contains("corrupt"), "{message}");
            }
            other => panic!("expected StorageCorrupt, got {other:?}"),
        }
        assert_eq!(m.metrics.drain().corrupt_detected, 1);
    }

    #[test]
    fn missing_file_is_a_typed_error() {
        let m = manager();
        let handle = m.write_partitioned("x", &sample()).unwrap();
        std::fs::remove_file(handle.path()).unwrap();
        assert!(matches!(
            m.read_partitioned(&handle, "x"),
            Err(Error::StorageCorrupt { .. })
        ));
    }

    #[test]
    fn writes_record_in_manifest_and_drop_clears_them() {
        let m = manager();
        let handle = m.write_partitioned("x", &sample()).unwrap();
        assert_eq!(m.manifest().file_count(), 1);
        drop(handle);
        assert_eq!(m.manifest().file_count(), 0);
    }

    /// Satellite: a vanished file (dir cleanup race) must not make the
    /// drop path misbehave — the manifest entry still gets removed.
    #[test]
    fn drop_tolerates_already_missing_file() {
        let m = manager();
        let handle = m.write_partitioned("x", &sample()).unwrap();
        std::fs::remove_file(handle.path()).unwrap();
        drop(handle);
        assert_eq!(m.manifest().file_count(), 0);
    }

    #[derive(Debug)]
    struct AlwaysFail;
    impl SpillFaultHook for AlwaysFail {
        fn hit(&self, site: FaultSite) -> spinner_common::Result<()> {
            Err(Error::FaultInjected {
                site: format!("{site:?}"),
            })
        }
    }

    #[test]
    fn fault_hook_aborts_before_any_io() {
        let m = SpillManager::new(
            std::env::temp_dir(),
            Arc::new(MemoryMetrics::new()),
            Some(Arc::new(AlwaysFail)),
        );
        let err = m.write_partitioned("x", &sample()).unwrap_err();
        assert!(matches!(err, Error::FaultInjected { .. }));
    }

    /// One adversarial hook that fires exactly one site, once.
    #[derive(Debug)]
    struct FireOnce(FaultSite, std::sync::atomic::AtomicBool);
    impl SpillFaultHook for FireOnce {
        fn hit(&self, site: FaultSite) -> spinner_common::Result<()> {
            if site == self.0 && !self.1.swap(true, Ordering::Relaxed) {
                return Err(Error::FaultInjected {
                    site: format!("{site:?}"),
                });
            }
            Ok(())
        }
    }

    fn manager_firing(site: FaultSite) -> SpillManager {
        SpillManager::new(
            std::env::temp_dir(),
            Arc::new(MemoryMetrics::new()),
            Some(Arc::new(FireOnce(site, Default::default()))),
        )
    }

    #[test]
    fn torn_write_reports_success_but_read_detects_it() {
        let m = manager_firing(FaultSite::TornWrite);
        let handle = m.write_partitioned("x", &sample()).unwrap();
        assert!(matches!(
            m.read_partitioned(&handle, "x"),
            Err(Error::StorageCorrupt { .. })
        ));
    }

    #[test]
    fn bit_flip_reports_success_but_read_detects_it() {
        let m = manager_firing(FaultSite::BitFlip);
        let handle = m.write_partitioned("x", &sample()).unwrap();
        assert!(matches!(
            m.read_partitioned(&handle, "x"),
            Err(Error::StorageCorrupt { .. })
        ));
    }

    #[test]
    fn disk_full_degrades_to_resource_exhausted() {
        let m = manager_firing(FaultSite::DiskFull);
        match m.write_partitioned("x", &sample()) {
            Err(Error::ResourceExhausted { resource, .. }) => {
                assert_eq!(resource, "spill_disk");
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
    }

    #[test]
    fn fsync_fail_discards_the_temp_file() {
        let m = manager_firing(FaultSite::FsyncFail);
        let err = m.write_partitioned("x", &sample()).unwrap_err();
        assert!(matches!(err, Error::SpillUnavailable { .. }), "{err:?}");
        // No temp or final file may survive the failed sync.
        let leaked = std::fs::read_dir(std::env::temp_dir())
            .unwrap()
            .flatten()
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.starts_with(&format!("spinner_spill_{}_{}_", std::process::id(), m.tag))
            })
            .count();
        assert_eq!(leaked, 0, "failed fsync must not leak files");
    }
}
