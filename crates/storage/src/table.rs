//! Base tables: schema + partitioned, copy-on-write row storage.

use std::sync::Arc;

use spinner_common::{Error, Result, Row, SchemaRef};

use crate::partition::{hash_partition, partition_of, Partitioned};

/// A named base table, hash-partitioned across the configured number of
/// virtual workers.
///
/// Row storage is copy-on-write: readers snapshot the per-partition `Arc`s,
/// writers clone a partition's vector only when it is shared. This mirrors
/// an MPP engine where scans never block on DML of other sessions.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: SchemaRef,
    parts: Vec<Arc<Vec<Row>>>,
    /// Column the table is hash-distributed on. `None` = round-robin.
    partition_key: Option<usize>,
    /// Declared primary-key column, used as the merge key of iterative CTE
    /// updates when present (paper §II).
    primary_key: Option<usize>,
}

impl Table {
    /// Create an empty table with `partitions` partitions.
    pub fn new(
        name: impl Into<String>,
        schema: SchemaRef,
        partitions: usize,
        partition_key: Option<usize>,
        primary_key: Option<usize>,
    ) -> Self {
        assert!(partitions >= 1);
        Table {
            name: name.into(),
            schema,
            parts: (0..partitions).map(|_| Arc::new(Vec::new())).collect(),
            partition_key,
            primary_key,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Declared primary-key column index, if any.
    pub fn primary_key(&self) -> Option<usize> {
        self.primary_key
    }

    /// Column the table is distributed on, if any.
    pub fn partition_key(&self) -> Option<usize> {
        self.partition_key
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// Total number of rows.
    pub fn row_count(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum()
    }

    /// O(P) snapshot of the current contents for scanning.
    pub fn snapshot(&self) -> Partitioned {
        Partitioned {
            schema: Arc::clone(&self.schema),
            parts: self.parts.clone(),
        }
    }

    /// Append rows, routing each to its hash partition.
    pub fn insert(&mut self, rows: Vec<Row>) -> Result<usize> {
        let width = self.schema.len();
        if let Some(bad) = rows.iter().find(|r| r.len() != width) {
            return Err(Error::execution(format!(
                "INSERT row width {} does not match table '{}' width {width}",
                bad.len(),
                self.name
            )));
        }
        let n = rows.len();
        let buckets = hash_partition(rows, self.partition_key, self.parts.len());
        for (part, extra) in self.parts.iter_mut().zip(buckets) {
            if !extra.is_empty() {
                Arc::make_mut(part).extend(extra);
            }
        }
        Ok(n)
    }

    /// Delete rows matching `pred`; returns the number removed.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> Result<bool>) -> Result<usize> {
        let mut removed = 0;
        for part in &mut self.parts {
            // Evaluate before mutating so a predicate error leaves the
            // partition untouched.
            let keep: Vec<bool> = part
                .iter()
                .map(|r| pred(r).map(|m| !m))
                .collect::<Result<_>>()?;
            if keep.iter().all(|k| *k) {
                continue;
            }
            let rows = Arc::make_mut(part);
            let mut it = keep.iter();
            rows.retain(|_| *it.next().expect("keep mask length"));
            removed += keep.iter().filter(|k| !**k).count();
        }
        Ok(removed)
    }

    /// Update rows in place: `f` returns `Some(new_row)` for rows to change.
    /// Returns the number of rows updated. If the partition-key column of a
    /// row changes, the row is re-routed to its new partition.
    pub fn update_where(
        &mut self,
        mut f: impl FnMut(&Row) -> Result<Option<Row>>,
    ) -> Result<usize> {
        let width = self.schema.len();
        let nparts = self.parts.len();
        let pk = self.partition_key;
        let mut updated = 0;
        let mut rerouted: Vec<Row> = Vec::new();
        for (pidx, part) in self.parts.iter_mut().enumerate() {
            // Plan all updates for the partition first (error safety).
            let mut changes: Vec<(usize, Row)> = Vec::new();
            for (i, row) in part.iter().enumerate() {
                if let Some(new_row) = f(row)? {
                    if new_row.len() != width {
                        return Err(Error::execution(format!(
                            "UPDATE produced row of width {}, table '{}' has width {width}",
                            new_row.len(),
                            self.name
                        )));
                    }
                    changes.push((i, new_row));
                }
            }
            if changes.is_empty() {
                continue;
            }
            updated += changes.len();
            let rows = Arc::make_mut(part);
            let mut remove: Vec<usize> = Vec::new();
            for (i, new_row) in changes {
                let stays = match pk {
                    Some(k) => {
                        let target = if new_row[k].is_null() {
                            0
                        } else {
                            partition_of(&new_row[k], nparts)
                        };
                        target == pidx
                    }
                    None => true,
                };
                if stays {
                    rows[i] = new_row;
                } else {
                    rerouted.push(new_row);
                    remove.push(i);
                }
            }
            for &i in remove.iter().rev() {
                rows.swap_remove(i);
            }
        }
        if !rerouted.is_empty() {
            let buckets = hash_partition(rerouted, self.partition_key, self.parts.len());
            for (part, extra) in self.parts.iter_mut().zip(buckets) {
                if !extra.is_empty() {
                    Arc::make_mut(part).extend(extra);
                }
            }
        }
        Ok(updated)
    }

    /// Remove every row (used by the middleware baseline's DELETE FROM).
    pub fn truncate(&mut self) {
        for part in &mut self.parts {
            *part = Arc::new(Vec::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{row_of, DataType, Field, Schema, Value};

    fn test_table() -> Table {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("v", DataType::Int),
        ]));
        Table::new("t", schema, 4, Some(0), Some(0))
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| row_of([Value::Int(i), Value::Int(i * 10)]))
            .collect()
    }

    #[test]
    fn insert_routes_and_counts() {
        let mut t = test_table();
        assert_eq!(t.insert(rows(20)).unwrap(), 20);
        assert_eq!(t.row_count(), 20);
    }

    #[test]
    fn insert_rejects_wrong_width() {
        let mut t = test_table();
        assert!(t.insert(vec![row_of([Value::Int(1)])]).is_err());
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn snapshot_is_isolated_from_later_dml() {
        let mut t = test_table();
        t.insert(rows(10)).unwrap();
        let snap = t.snapshot();
        t.insert(rows(10)).unwrap();
        assert_eq!(snap.total_rows(), 10);
        assert_eq!(t.row_count(), 20);
    }

    #[test]
    fn delete_where_removes_matching() {
        let mut t = test_table();
        t.insert(rows(10)).unwrap();
        let removed = t
            .delete_where(|r| Ok(r[0].as_i64().unwrap() % 2 == 0))
            .unwrap();
        assert_eq!(removed, 5);
        assert_eq!(t.row_count(), 5);
    }

    #[test]
    fn update_where_changes_values() {
        let mut t = test_table();
        t.insert(rows(4)).unwrap();
        let n = t
            .update_where(|r| {
                let id = r[0].as_i64()?;
                Ok(if id == 2 {
                    Some(row_of([Value::Int(2), Value::Int(999)]))
                } else {
                    None
                })
            })
            .unwrap();
        assert_eq!(n, 1);
        let all = t.snapshot().gather();
        let v2 = all.iter().find(|r| r[0] == Value::Int(2)).unwrap();
        assert_eq!(v2[1], Value::Int(999));
    }

    #[test]
    fn update_reroutes_changed_partition_key() {
        let mut t = test_table();
        t.insert(rows(8)).unwrap();
        t.update_where(|r| {
            let id = r[0].as_i64()?;
            Ok(Some(row_of([Value::Int(id + 100), r[1].clone()])))
        })
        .unwrap();
        assert_eq!(t.row_count(), 8);
        // every row must live in the partition its new key hashes to
        for (pidx, part) in t.snapshot().parts.iter().enumerate() {
            for r in part.iter() {
                assert_eq!(partition_of(&r[0], 4), pidx);
            }
        }
    }

    #[test]
    fn truncate_empties_all_partitions() {
        let mut t = test_table();
        t.insert(rows(10)).unwrap();
        t.truncate();
        assert_eq!(t.row_count(), 0);
    }
}
