//! In-memory storage layer: catalog, hash-partitioned tables, and the
//! temp-result registry that backs DBSpinner's `rename` operator.
//!
//! The paper's testbed (Futurewei MPPDB) is a shared-nothing MPP engine; we
//! model each node as a *partition*. A [`Table`] stores its rows as one
//! immutable [`Arc`](std::sync::Arc)'d vector per partition, so scans are
//! O(1) snapshots and DML is copy-on-write. The [`TempRegistry`] is the
//! executor's "lookup table that manages intermediate results in memory"
//! (paper §VI-A): `rename` re-points a name at an existing buffer instead
//! of copying rows.
#![warn(missing_docs)]

pub mod catalog;
pub mod checkpoint;
pub mod journal;
pub mod manifest;
pub mod partition;
pub mod registry;
pub mod spill;
pub mod table;

pub use catalog::Catalog;
pub use checkpoint::{CheckpointStore, LoopCheckpoint, ResumeSeed};
pub use journal::{EpochRecord, InputRecord, JournalEntry, QueryJournal};
pub use manifest::{gc_orphans, Manifest, ManifestSnapshot};
pub use partition::{hash_partition, partition_of, Partitioned};
pub use registry::TempRegistry;
pub use spill::{
    read_checkpoint_file, read_partitioned_file, xxh64, SpillEnv, SpillHandle, SpillManager,
};
pub use table::Table;
