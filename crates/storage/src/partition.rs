//! Hash partitioning of row sets across virtual MPP workers.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use spinner_common::{Row, SchemaRef, Value};

/// Rows distributed across `P` partitions, each an immutable snapshot.
///
/// This is the shape scans produce, exchanges reshuffle, and the temp
/// registry stores. Cloning is O(P) `Arc` bumps.
#[derive(Debug, Clone)]
pub struct Partitioned {
    /// Schema of every partition.
    pub schema: SchemaRef,
    /// One immutable row vector per virtual worker.
    pub parts: Vec<Arc<Vec<Row>>>,
}

impl Partitioned {
    /// All rows gathered into a single empty-partition layout.
    pub fn empty(schema: SchemaRef, partitions: usize) -> Self {
        Partitioned {
            schema,
            parts: (0..partitions).map(|_| Arc::new(Vec::new())).collect(),
        }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// Total row count across partitions.
    pub fn total_rows(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum()
    }

    /// Estimated in-memory size in bytes, used for intermediate-state
    /// budgets: per row, a boxed-slice header plus one `Value` slot per
    /// column. This deliberately under-counts string payloads — budgets
    /// need a stable, cheap estimate, not an exact accounting.
    pub fn estimated_bytes(&self) -> u64 {
        let width = self.schema.len() as u64;
        let per_row = 16 + 24 * width;
        self.total_rows() as u64 * per_row
    }

    /// Gather every partition's rows into one vector (clone of the rows).
    pub fn gather(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.total_rows());
        for p in &self.parts {
            out.extend(p.iter().cloned());
        }
        out
    }

    /// Build from a flat row vector by hashing column `key` into `parts`
    /// partitions. `key = None` distributes round-robin.
    pub fn from_rows(schema: SchemaRef, rows: Vec<Row>, key: Option<usize>, parts: usize) -> Self {
        let bufs = hash_partition(rows, key, parts);
        Partitioned {
            schema,
            parts: bufs.into_iter().map(Arc::new).collect(),
        }
    }
}

/// Deterministic hash of a single value, stable across processes for a given
/// build (we only need intra-run consistency).
pub fn value_hash(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Partition index for a value under `parts` partitions.
pub fn partition_of(v: &Value, parts: usize) -> usize {
    debug_assert!(parts > 0);
    (value_hash(v) % parts as u64) as usize
}

/// Split `rows` into `parts` buckets by hashing column `key`; NULL keys go
/// to partition 0. `key = None` spreads rows round-robin.
pub fn hash_partition(rows: Vec<Row>, key: Option<usize>, parts: usize) -> Vec<Vec<Row>> {
    assert!(parts > 0, "at least one partition required");
    let mut bufs: Vec<Vec<Row>> = (0..parts).map(|_| Vec::new()).collect();
    match key {
        Some(k) => {
            for row in rows {
                let idx = if row[k].is_null() {
                    0
                } else {
                    partition_of(&row[k], parts)
                };
                bufs[idx].push(row);
            }
        }
        None => {
            for (i, row) in rows.into_iter().enumerate() {
                bufs[i % parts].push(row);
            }
        }
    }
    bufs
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{row_of, DataType, Field, Schema};

    fn rows_with_keys(keys: &[i64]) -> Vec<Row> {
        keys.iter().map(|k| row_of([Value::Int(*k)])).collect()
    }

    #[test]
    fn partitioning_is_deterministic_and_complete() {
        let rows = rows_with_keys(&(0..100).collect::<Vec<_>>());
        let a = hash_partition(rows.clone(), Some(0), 4);
        let b = hash_partition(rows, Some(0), 4);
        assert_eq!(a, b);
        assert_eq!(a.iter().map(Vec::len).sum::<usize>(), 100);
    }

    #[test]
    fn same_key_lands_in_same_partition() {
        let rows = rows_with_keys(&[7, 7, 7, 7]);
        let parts = hash_partition(rows, Some(0), 8);
        let non_empty: Vec<_> = parts.iter().filter(|p| !p.is_empty()).collect();
        assert_eq!(non_empty.len(), 1);
        assert_eq!(non_empty[0].len(), 4);
    }

    #[test]
    fn null_keys_go_to_partition_zero() {
        let rows = vec![row_of([Value::Null]), row_of([Value::Null])];
        let parts = hash_partition(rows, Some(0), 4);
        assert_eq!(parts[0].len(), 2);
    }

    #[test]
    fn round_robin_balances() {
        let rows = rows_with_keys(&(0..8).collect::<Vec<_>>());
        let parts = hash_partition(rows, None, 4);
        assert!(parts.iter().all(|p| p.len() == 2));
    }

    #[test]
    fn int_and_float_keys_colocate() {
        // Joins rely on Int(2) and Float(2.0) hashing identically.
        assert_eq!(
            partition_of(&Value::Int(2), 16),
            partition_of(&Value::Float(2.0), 16)
        );
    }

    #[test]
    fn gather_roundtrip() {
        let schema = std::sync::Arc::new(Schema::new(vec![Field::new("k", DataType::Int)]));
        let rows = rows_with_keys(&[1, 2, 3, 4, 5]);
        let p = Partitioned::from_rows(schema, rows.clone(), Some(0), 3);
        assert_eq!(p.total_rows(), 5);
        let mut gathered = p.gather();
        gathered.sort();
        assert_eq!(gathered, rows);
    }
}
