//! Crash-consistent query journal: what was running when we died?
//!
//! The PR-8 durability layer makes checkpoint *contents* survive a crash,
//! but nothing records *which statement* those checkpoints belong to — a
//! restarted process finds sealed files it cannot interpret and GCs them.
//! The [`QueryJournal`] closes that gap: per in-flight iterative
//! statement it records the normalized SQL, the planner-affecting config
//! overlay, the loop identity (internal CTE name), the durable input-table
//! snapshots, and the newest committed checkpoint epochs (up to the two
//! the [`CheckpointStore`](crate::CheckpointStore) retains). That is
//! exactly enough for a fresh process to re-plan the statement and resume
//! its loop from the checkpointed iteration instead of iteration 0.
//!
//! The journal is one file per process (`spinner_journal_{pid}_{tag}.qjl`
//! under the spill directory), rewritten whole on every update with the
//! same `SPNSPILL` sealed codec and temp → fsync → rename → dir-sync
//! protocol as the data files it points at — a reader only ever observes
//! a complete, checksummed journal or none at all. Dropping the journal
//! (clean shutdown) deletes the file; only a hard kill leaves it behind,
//! which is precisely the signal the adoption pass keys on: *journal file
//! with a dead owner pid ⇒ in-flight work to adopt*.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use spinner_common::{Error, Result};

use crate::manifest::parent_dir_sync;
use crate::spill::{header, put_str, put_u32, put_u64, seal, Reader};

/// One committed checkpoint epoch a journal entry points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochRecord {
    /// Manifest epoch number (1-based per loop key).
    pub epoch: u64,
    /// Loop iteration the checkpoint was taken after.
    pub iteration: u64,
    /// File name (not path) of the sealed checkpoint under the spill dir.
    pub file: String,
}

/// One durable input-table snapshot a journal entry depends on. Base
/// tables live only in memory, so a resumable statement snapshots them to
/// sealed spill files up front; adoption recreates the tables from these
/// records with the same partitioning, which is what makes the re-planned
/// statement produce identical hashes and joins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputRecord {
    /// Catalog table name.
    pub table: String,
    /// File name (not path) of the sealed snapshot under the spill dir.
    pub file: String,
    /// Primary-key column index, if the table declared one.
    pub primary_key: Option<usize>,
    /// Partition-key column index, if the table declared one.
    pub partition_key: Option<usize>,
}

/// Everything recorded about one in-flight iterative statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Stable query handle, unique per journal (and per server lifetime).
    pub query_id: u64,
    /// The normalized SQL text, re-planned verbatim on adoption.
    pub sql: String,
    /// Planner-affecting config overlay as `(knob, value)` pairs. A
    /// mismatch with the adopting engine's config vetoes adoption — a
    /// different plan shape would not line up with the checkpointed
    /// `__cte_*` / `__delta_*` names.
    pub settings: Vec<(String, String)>,
    /// The loop's internal CTE name (deterministic across re-plans of the
    /// same SQL under the same settings).
    pub loop_key: String,
    /// Committed checkpoint epochs, newest first, at most two — mirroring
    /// the store's two-epoch retention so adoption can fall back
    /// current → previous on [`Error::StorageCorrupt`].
    pub epochs: Vec<EpochRecord>,
    /// Durable input-table snapshots the statement reads.
    pub inputs: Vec<InputRecord>,
}

/// Per-process journal of in-flight resumable statements, stored as
/// `spinner_journal_{pid}_{tag}.qjl` under the spill directory.
///
/// All methods are thread-safe. Updates are best-effort (a journal write
/// failure never fails the query — it only narrows what a later restart
/// can adopt) but crash consistent: the file is rewritten whole behind a
/// temp-file rename, so a kill mid-update leaves the previous complete
/// journal, never a torn one.
#[derive(Debug)]
pub struct QueryJournal {
    path: PathBuf,
    durable: bool,
    state: Mutex<BTreeMap<u64, JournalEntry>>,
}

impl QueryJournal {
    /// Journal for this process under `dir`; `tag` distinguishes engines
    /// within one process (same convention as the spill manager).
    pub fn new(dir: &Path, tag: u64, durable: bool) -> Self {
        Self::for_pid(dir, std::process::id(), tag, durable)
    }

    /// Journal impersonating another pid — test-only surface for staging
    /// "dead process" fixtures the adoption pass must handle.
    pub fn for_pid(dir: &Path, pid: u32, tag: u64, durable: bool) -> Self {
        QueryJournal {
            path: dir.join(format!("spinner_journal_{pid}_{tag}.qjl")),
            durable,
            state: Mutex::new(BTreeMap::new()),
        }
    }

    /// Path of the journal file (observability/tests).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Record a statement entering its iterative phase. Replaces any
    /// prior entry with the same query id.
    pub fn begin(&self, entry: JournalEntry) {
        let mut state = self.state.lock().expect("journal lock");
        state.insert(entry.query_id, entry);
        self.save(&state);
    }

    /// Record a newly committed checkpoint epoch for `query_id`. Only the
    /// two newest epochs are retained, matching the checkpoint store's
    /// retention (an older file is already deleted by the time this
    /// drops its record).
    pub fn note_epoch(&self, query_id: u64, epoch: EpochRecord) {
        let mut state = self.state.lock().expect("journal lock");
        if let Some(entry) = state.get_mut(&query_id) {
            entry.epochs.insert(0, epoch);
            entry.epochs.truncate(2);
            self.save(&state);
        }
    }

    /// The statement completed (or failed) cleanly: nothing to resume.
    pub fn finish(&self, query_id: u64) {
        let mut state = self.state.lock().expect("journal lock");
        if state.remove(&query_id).is_some() {
            self.save(&state);
        }
    }

    /// Number of in-flight entries (observability/tests).
    pub fn len(&self) -> usize {
        self.state.lock().expect("journal lock").len()
    }

    /// True when nothing is journaled.
    pub fn is_empty(&self) -> bool {
        self.state.lock().expect("journal lock").is_empty()
    }

    fn save(&self, state: &BTreeMap<u64, JournalEntry>) {
        let mut buf = header();
        put_u32(&mut buf, state.len() as u32);
        for entry in state.values() {
            put_u64(&mut buf, entry.query_id);
            put_str(&mut buf, &entry.sql);
            put_u32(&mut buf, entry.settings.len() as u32);
            for (k, v) in &entry.settings {
                put_str(&mut buf, k);
                put_str(&mut buf, v);
            }
            put_str(&mut buf, &entry.loop_key);
            put_u32(&mut buf, entry.epochs.len() as u32);
            for e in &entry.epochs {
                put_u64(&mut buf, e.epoch);
                put_u64(&mut buf, e.iteration);
                put_str(&mut buf, &e.file);
            }
            put_u32(&mut buf, entry.inputs.len() as u32);
            for i in &entry.inputs {
                put_str(&mut buf, &i.table);
                put_str(&mut buf, &i.file);
                put_key(&mut buf, i.primary_key);
                put_key(&mut buf, i.partition_key);
            }
        }
        seal(&mut buf);
        let tmp = self.path.with_extension("qjl.tmp");
        if std::fs::write(&tmp, &buf).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if self.durable
            && std::fs::File::open(&tmp)
                .and_then(|f| f.sync_all())
                .is_err()
        {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if std::fs::rename(&tmp, &self.path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if self.durable {
            let _ = parent_dir_sync(&self.path);
        }
    }

    /// Parse and seal-verify a journal file. A short, torn or mutated
    /// journal surfaces as the typed [`Error::StorageCorrupt`] — the
    /// adoption pass treats that as "nothing adoptable here", never as
    /// license to guess.
    pub fn load(path: &Path) -> Result<Vec<JournalEntry>> {
        let bytes = std::fs::read(path).map_err(|e| Error::StorageCorrupt {
            region: "journal".to_string(),
            message: format!("journal unreadable: {e}"),
        })?;
        let mut r = Reader::new(&bytes, "journal")?;
        r.header()?;
        let n_entries = r.u32()? as usize;
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let query_id = r.u64()?;
            let sql = r.str()?;
            let n_settings = r.u32()? as usize;
            let mut settings = Vec::with_capacity(n_settings);
            for _ in 0..n_settings {
                let k = r.str()?;
                let v = r.str()?;
                settings.push((k, v));
            }
            let loop_key = r.str()?;
            let n_epochs = r.u32()? as usize;
            let mut epochs = Vec::with_capacity(n_epochs);
            for _ in 0..n_epochs {
                epochs.push(EpochRecord {
                    epoch: r.u64()?,
                    iteration: r.u64()?,
                    file: r.str()?,
                });
            }
            let n_inputs = r.u32()? as usize;
            let mut inputs = Vec::with_capacity(n_inputs);
            for _ in 0..n_inputs {
                inputs.push(InputRecord {
                    table: r.str()?,
                    file: r.str()?,
                    primary_key: read_key(&mut r)?,
                    partition_key: read_key(&mut r)?,
                });
            }
            entries.push(JournalEntry {
                query_id,
                sql,
                settings,
                loop_key,
                epochs,
                inputs,
            });
        }
        r.finish()?;
        Ok(entries)
    }
}

fn put_key(buf: &mut Vec<u8>, key: Option<usize>) {
    match key {
        None => buf.push(0),
        Some(k) => {
            buf.push(1);
            put_u64(buf, k as u64);
        }
    }
}

fn read_key(r: &mut Reader<'_>) -> Result<Option<usize>> {
    match r.u8()? {
        0 => Ok(None),
        _ => Ok(Some(r.u64()? as usize)),
    }
}

impl Drop for QueryJournal {
    fn drop(&mut self) {
        // A clean shutdown has nothing to resume. Only a hard kill —
        // which skips destructors — leaves the journal for adoption.
        let _ = std::fs::remove_file(&self.path);
        let _ = std::fs::remove_file(self.path.with_extension("qjl.tmp"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spinner_qjl_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(id: u64) -> JournalEntry {
        JournalEntry {
            query_id: id,
            sql: format!("WITH ITERATIVE pr AS (SELECT {id}) SELECT * FROM pr"),
            settings: vec![
                ("partitions".into(), "4".into()),
                ("semi_naive".into(), "true".into()),
            ],
            loop_key: "__cte_pr_1".into(),
            epochs: vec![EpochRecord {
                epoch: 3,
                iteration: 6,
                file: "spinner_spill_1_0_9_checkpoint.spn".into(),
            }],
            inputs: vec![InputRecord {
                table: "edges".into(),
                file: "spinner_spill_1_0_0_input_edges.spn".into(),
                primary_key: Some(0),
                partition_key: None,
            }],
        }
    }

    #[test]
    fn begin_note_finish_round_trip() {
        let dir = temp_dir("rt");
        let j = QueryJournal::new(&dir, 0, false);
        assert!(j.is_empty());
        j.begin(entry(7));
        j.note_epoch(
            7,
            EpochRecord {
                epoch: 4,
                iteration: 8,
                file: "spinner_spill_1_0_11_checkpoint.spn".into(),
            },
        );
        let back = QueryJournal::load(j.path()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].query_id, 7);
        assert_eq!(back[0].sql, entry(7).sql);
        assert_eq!(back[0].settings, entry(7).settings);
        assert_eq!(back[0].loop_key, "__cte_pr_1");
        // Newest epoch first, older record demoted behind it.
        assert_eq!(back[0].epochs.len(), 2);
        assert_eq!(back[0].epochs[0].epoch, 4);
        assert_eq!(back[0].epochs[0].iteration, 8);
        assert_eq!(back[0].epochs[1].epoch, 3);
        assert_eq!(back[0].inputs, entry(7).inputs);
        j.finish(7);
        assert!(j.is_empty());
        assert_eq!(QueryJournal::load(j.path()).unwrap().len(), 0);
        let path = j.path().to_path_buf();
        drop(j);
        assert!(!path.exists(), "drop must delete the journal");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_retention_is_two_newest_first() {
        let dir = temp_dir("epochs");
        let j = QueryJournal::new(&dir, 1, false);
        let mut e = entry(1);
        e.epochs.clear();
        j.begin(e);
        for epoch in 1..=5 {
            j.note_epoch(
                1,
                EpochRecord {
                    epoch,
                    iteration: epoch * 2,
                    file: format!("f{epoch}.spn"),
                },
            );
        }
        let back = QueryJournal::load(j.path()).unwrap();
        assert_eq!(back[0].epochs.len(), 2);
        assert_eq!(back[0].epochs[0].epoch, 5);
        assert_eq!(back[0].epochs[1].epoch, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_journal_is_storage_corrupt() {
        let dir = temp_dir("tamper");
        let j = QueryJournal::new(&dir, 2, false);
        j.begin(entry(1));
        let mut bytes = std::fs::read(j.path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(j.path(), &bytes).unwrap();
        assert!(matches!(
            QueryJournal::load(j.path()),
            Err(Error::StorageCorrupt { .. })
        ));
        // Truncation (torn write) is caught too.
        std::fs::write(j.path(), &bytes[..mid]).unwrap();
        assert!(matches!(
            QueryJournal::load(j.path()),
            Err(Error::StorageCorrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multiple_entries_survive_and_finish_individually() {
        let dir = temp_dir("multi");
        let j = QueryJournal::new(&dir, 3, false);
        j.begin(entry(1));
        j.begin(entry(2));
        assert_eq!(j.len(), 2);
        j.finish(1);
        let back = QueryJournal::load(j.path()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].query_id, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
