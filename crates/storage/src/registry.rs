//! The temp-result registry: DBSpinner's in-memory lookup table for
//! intermediate results, and the home of the `rename` operator.
//!
//! Paper §VI-A: "The execution engine has a lookup table that manages
//! intermediate results in memory ... The rename operator looks up the old
//! name and updates it with the new value. If the new name already exists
//! ... MPPDB simply removes that entry and releases the memory associated
//! with it." `rename` here is a HashMap re-key: O(1), no row copying —
//! which is precisely the data-movement saving Figure 8 measures.

use std::collections::HashMap;

use parking_lot::RwLock;
use spinner_common::{Error, Result};

use crate::partition::Partitioned;

/// Named intermediate results for one query execution.
#[derive(Debug, Default)]
pub struct TempRegistry {
    entries: RwLock<HashMap<String, Partitioned>>,
}

impl TempRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store (or replace) a named intermediate result.
    pub fn put(&self, name: &str, data: Partitioned) {
        self.entries.write().insert(name.to_ascii_lowercase(), data);
    }

    /// Snapshot a named result. O(P) Arc bumps.
    pub fn get(&self, name: &str) -> Result<Partitioned> {
        self.entries
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| Error::execution(format!("intermediate result '{name}' not found")))
    }

    /// Whether a result is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.read().contains_key(&name.to_ascii_lowercase())
    }

    /// The `rename` operator: re-point `new` at the buffer currently named
    /// `old`, dropping whatever `new` pointed at before. No rows move.
    ///
    /// Atomic from the reader's perspective: the remove + insert happen as
    /// a single swap under one write-lock acquisition, so a concurrent
    /// [`get`](Self::get) observes either the old binding of `new` or the
    /// re-pointed one — never a window where neither name resolves.
    /// Recovery replays (which re-run rename-path loop bodies while
    /// observers may be profiling) rely on this.
    pub fn rename(&self, old: &str, new: &str) -> Result<()> {
        let old_key = old.to_ascii_lowercase();
        let new_key = new.to_ascii_lowercase();
        let mut entries = self.entries.write();
        if !entries.contains_key(&old_key) {
            return Err(Error::execution(format!(
                "cannot rename '{old}': not found"
            )));
        }
        if old_key == new_key {
            // Renaming a result to itself is a no-op, not a remove+insert
            // (which would momentarily unbind the name if ever split).
            return Ok(());
        }
        let data = entries.remove(&old_key).expect("checked above");
        // Insert replaces (and thereby frees) any previous entry under `new`.
        entries.insert(new_key, data);
        Ok(())
    }

    /// Drop one entry (working-table cleanup between iterations).
    pub fn remove(&self, name: &str) {
        self.entries.write().remove(&name.to_ascii_lowercase());
    }

    /// Drop everything (end of query).
    pub fn clear(&self) {
        self.entries.write().clear();
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when no entries are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{row_of, DataType, Field, Schema, Value};
    use std::sync::Arc;

    fn part_with(n: i64) -> Partitioned {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        Partitioned::from_rows(
            schema,
            (0..n).map(|i| row_of([Value::Int(i)])).collect(),
            Some(0),
            2,
        )
    }

    #[test]
    fn put_get_roundtrip() {
        let reg = TempRegistry::new();
        reg.put("Work", part_with(5));
        assert_eq!(reg.get("work").unwrap().total_rows(), 5);
    }

    #[test]
    fn rename_moves_without_copying() {
        let reg = TempRegistry::new();
        let data = part_with(3);
        let buf_ptr = Arc::as_ptr(&data.parts[0]);
        reg.put("working", data);
        reg.put("cte", part_with(10));
        reg.rename("working", "cte").unwrap();
        assert!(!reg.contains("working"));
        let cte = reg.get("cte").unwrap();
        assert_eq!(cte.total_rows(), 3);
        // The buffer is the same allocation — rename moved a pointer.
        assert_eq!(Arc::as_ptr(&cte.parts[0]), buf_ptr);
    }

    #[test]
    fn rename_missing_source_errors() {
        let reg = TempRegistry::new();
        assert!(reg.rename("ghost", "cte").is_err());
    }

    #[test]
    fn rename_drops_previous_target() {
        let reg = TempRegistry::new();
        reg.put("a", part_with(1));
        reg.put("b", part_with(2));
        reg.rename("a", "b").unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("b").unwrap().total_rows(), 1);
    }

    #[test]
    fn clear_empties() {
        let reg = TempRegistry::new();
        reg.put("a", part_with(1));
        reg.clear();
        assert!(reg.is_empty());
    }

    #[test]
    fn rename_to_self_is_a_noop() {
        let reg = TempRegistry::new();
        reg.put("cte", part_with(4));
        reg.rename("cte", "CTE").unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("cte").unwrap().total_rows(), 4);
        assert!(reg.rename("ghost", "ghost").is_err());
    }

    /// Regression test for reader-visible rename atomicity: concurrent
    /// `get("cte")` calls during a storm of working→cte renames must never
    /// observe a state where the name is unbound.
    #[test]
    fn rename_is_atomic_for_concurrent_readers() {
        let reg = Arc::new(TempRegistry::new());
        reg.put("cte", part_with(1));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    assert!(
                        reg.get("cte").is_ok(),
                        "reader observed 'cte' unbound mid-rename"
                    );
                    reads += 1;
                }
                reads
            }));
        }
        for i in 0..2_000 {
            reg.put("working", part_with(i % 7 + 1));
            reg.rename("working", "cte").unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        assert_eq!(reg.len(), 1);
    }
}
