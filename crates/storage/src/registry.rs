//! The temp-result registry: DBSpinner's in-memory lookup table for
//! intermediate results, and the home of the `rename` operator.
//!
//! Paper §VI-A: "The execution engine has a lookup table that manages
//! intermediate results in memory ... The rename operator looks up the old
//! name and updates it with the new value. If the new name already exists
//! ... MPPDB simply removes that entry and releases the memory associated
//! with it." `rename` here is a HashMap re-key: O(1), no row copying —
//! which is precisely the data-movement saving Figure 8 measures.
//!
//! Under memory pressure an entry may live on disk instead of in memory:
//! each slot is either `Resident` (the `Partitioned` table) or `Spilled`
//! (a [`SpillHandle`] owning the serialized file). [`TempRegistry::get`]
//! rehydrates spilled entries transparently, and `rename` re-keys a slot
//! in either state — the rename fast path stays an O(1) pointer move even
//! when one side of the rename is on disk.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use spinner_common::memory::{RegionId, RegionKind};
use spinner_common::{Error, Result};

use crate::partition::Partitioned;
use crate::spill::{SpillEnv, SpillHandle};

#[derive(Debug)]
enum Slot {
    Resident(Partitioned),
    Spilled(SpillHandle),
}

#[derive(Debug)]
struct Entry {
    slot: Slot,
    region: Option<RegionId>,
}

/// Named intermediate results for one query execution.
#[derive(Debug, Default)]
pub struct TempRegistry {
    entries: RwLock<HashMap<String, Entry>>,
    spill: RwLock<Option<Arc<SpillEnv>>>,
}

impl TempRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or remove) the spill environment. With an environment
    /// installed, every `put` registers a region with the accountant and
    /// entries become spillable; without one the registry behaves exactly
    /// as before spilling existed.
    pub fn set_spill(&self, env: Option<Arc<SpillEnv>>) {
        *self.spill.write() = env;
    }

    /// The installed spill environment, if any.
    pub fn spill_env(&self) -> Option<Arc<SpillEnv>> {
        self.spill.read().clone()
    }

    fn release(&self, env: &Option<Arc<SpillEnv>>, entry: Entry) {
        if let (Some(env), Some(region)) = (env, entry.region) {
            env.accountant.release(region);
        }
    }

    /// Store (or replace) a named intermediate result.
    pub fn put(&self, name: &str, data: Partitioned) {
        let key = name.to_ascii_lowercase();
        let env = self.spill_env();
        let region = env.as_ref().map(|e| {
            e.accountant
                .register(&key, RegionKind::of_temp_name(&key), data.estimated_bytes())
        });
        let entry = Entry {
            slot: Slot::Resident(data),
            region,
        };
        if let Some(old) = self.entries.write().insert(key, entry) {
            self.release(&env, old);
        }
    }

    /// Snapshot a named result. O(P) Arc bumps when resident; a spilled
    /// entry is read back from disk, made resident again, and returned.
    pub fn get(&self, name: &str) -> Result<Partitioned> {
        let key = name.to_ascii_lowercase();
        {
            let entries = self.entries.read();
            match entries.get(&key) {
                None => {
                    return Err(Error::execution(format!(
                        "intermediate result '{name}' not found"
                    )))
                }
                Some(Entry {
                    slot: Slot::Resident(data),
                    region,
                }) => {
                    if let (Some(env), Some(region)) = (self.spill_env(), region) {
                        env.accountant.touch(*region);
                    }
                    return Ok(data.clone());
                }
                Some(Entry {
                    slot: Slot::Spilled(_),
                    ..
                }) => {}
            }
        }
        self.rehydrate(&key, name)
    }

    /// Pointer identity of a resident entry's partition buffers — the key
    /// the join-state cache uses to prove a cached build is still derived
    /// from the same physical data. Returns `None` when the entry is
    /// missing or spilled (identity is unknowable without I/O; this method
    /// deliberately never rehydrates or touches the region). Spilling and
    /// rehydrating, recovery re-`put`s, and plain replacement all produce
    /// new buffers, so any of them changes the fingerprint and invalidates
    /// state derived from the old one.
    pub fn fingerprint(&self, name: &str) -> Option<Vec<usize>> {
        let key = name.to_ascii_lowercase();
        let entries = self.entries.read();
        match entries.get(&key) {
            Some(Entry {
                slot: Slot::Resident(data),
                ..
            }) => Some(data.parts.iter().map(|p| Arc::as_ptr(p) as usize).collect()),
            _ => None,
        }
    }

    /// Read a spilled entry back into memory under the write lock.
    fn rehydrate(&self, key: &str, name: &str) -> Result<Partitioned> {
        let env = self.spill_env().ok_or_else(|| {
            Error::execution(format!(
                "intermediate result '{name}' is spilled but no spill environment is installed"
            ))
        })?;
        let mut entries = self.entries.write();
        let entry = entries
            .get_mut(key)
            .ok_or_else(|| Error::execution(format!("intermediate result '{name}' not found")))?;
        match &entry.slot {
            // Another thread rehydrated while we waited for the lock.
            Slot::Resident(data) => Ok(data.clone()),
            Slot::Spilled(handle) => {
                let data = env.manager.read_partitioned(handle, key)?;
                if let Some(region) = entry.region {
                    env.accountant.note_rehydrated(region);
                }
                // Replacing the slot drops the handle, deleting the file.
                entry.slot = Slot::Resident(data.clone());
                Ok(data)
            }
        }
    }

    /// Serialize a resident entry to disk and release its memory. A
    /// missing or already-spilled entry is a no-op (the spill plan may
    /// race with renames or removals), returning `Ok(false)`.
    pub fn spill_entry(&self, name: &str) -> Result<bool> {
        let key = name.to_ascii_lowercase();
        let Some(env) = self.spill_env() else {
            return Ok(false);
        };
        let mut entries = self.entries.write();
        let Some(entry) = entries.get_mut(&key) else {
            return Ok(false);
        };
        let Slot::Resident(data) = &entry.slot else {
            return Ok(false);
        };
        let handle = env.manager.write_partitioned(&key, data)?;
        if let Some(region) = entry.region {
            env.accountant.note_spilled(region);
        }
        entry.slot = Slot::Spilled(handle);
        Ok(true)
    }

    /// Whether a result is registered (resident or spilled).
    pub fn contains(&self, name: &str) -> bool {
        self.entries.read().contains_key(&name.to_ascii_lowercase())
    }

    /// The `rename` operator: re-point `new` at the buffer currently named
    /// `old`, dropping whatever `new` pointed at before. No rows move —
    /// and a spilled source moves as a file handle, no disk I/O either.
    ///
    /// Atomic from the reader's perspective: the remove + insert happen as
    /// a single swap under one write-lock acquisition, so a concurrent
    /// [`get`](Self::get) observes either the old binding of `new` or the
    /// re-pointed one — never a window where neither name resolves.
    /// Recovery replays (which re-run rename-path loop bodies while
    /// observers may be profiling) rely on this.
    pub fn rename(&self, old: &str, new: &str) -> Result<()> {
        let old_key = old.to_ascii_lowercase();
        let new_key = new.to_ascii_lowercase();
        let env = self.spill_env();
        let mut entries = self.entries.write();
        if !entries.contains_key(&old_key) {
            return Err(Error::execution(format!(
                "cannot rename '{old}': not found"
            )));
        }
        if old_key == new_key {
            // Renaming a result to itself is a no-op, not a remove+insert
            // (which would momentarily unbind the name if ever split).
            return Ok(());
        }
        let entry = entries.remove(&old_key).expect("checked above");
        if let (Some(env), Some(region)) = (&env, entry.region) {
            env.accountant.rename(region, &new_key);
        }
        // Insert replaces (and thereby frees) any previous entry under `new`.
        if let Some(old_entry) = entries.insert(new_key, entry) {
            self.release(&env, old_entry);
        }
        Ok(())
    }

    /// Drop one entry (working-table cleanup between iterations).
    pub fn remove(&self, name: &str) {
        let env = self.spill_env();
        if let Some(entry) = self.entries.write().remove(&name.to_ascii_lowercase()) {
            self.release(&env, entry);
        }
    }

    /// Drop everything (end of query).
    pub fn clear(&self) {
        let env = self.spill_env();
        for (_, entry) in self.entries.write().drain() {
            self.release(&env, entry);
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when no entries are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Number of entries currently spilled to disk (observability/tests).
    pub fn spilled_count(&self) -> usize {
        self.entries
            .read()
            .values()
            .filter(|e| matches!(e.slot, Slot::Spilled(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{row_of, DataType, Field, Schema, Value};
    use std::sync::Arc;

    fn part_with(n: i64) -> Partitioned {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        Partitioned::from_rows(
            schema,
            (0..n).map(|i| row_of([Value::Int(i)])).collect(),
            Some(0),
            2,
        )
    }

    fn spill_registry() -> TempRegistry {
        let reg = TempRegistry::new();
        reg.set_spill(Some(Arc::new(SpillEnv::new(1, None, None))));
        reg
    }

    #[test]
    fn put_get_roundtrip() {
        let reg = TempRegistry::new();
        reg.put("Work", part_with(5));
        assert_eq!(reg.get("work").unwrap().total_rows(), 5);
    }

    #[test]
    fn rename_moves_without_copying() {
        let reg = TempRegistry::new();
        let data = part_with(3);
        let buf_ptr = Arc::as_ptr(&data.parts[0]);
        reg.put("working", data);
        reg.put("cte", part_with(10));
        reg.rename("working", "cte").unwrap();
        assert!(!reg.contains("working"));
        let cte = reg.get("cte").unwrap();
        assert_eq!(cte.total_rows(), 3);
        // The buffer is the same allocation — rename moved a pointer.
        assert_eq!(Arc::as_ptr(&cte.parts[0]), buf_ptr);
    }

    #[test]
    fn rename_missing_source_errors() {
        let reg = TempRegistry::new();
        assert!(reg.rename("ghost", "cte").is_err());
    }

    #[test]
    fn rename_drops_previous_target() {
        let reg = TempRegistry::new();
        reg.put("a", part_with(1));
        reg.put("b", part_with(2));
        reg.rename("a", "b").unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("b").unwrap().total_rows(), 1);
    }

    #[test]
    fn clear_empties() {
        let reg = TempRegistry::new();
        reg.put("a", part_with(1));
        reg.clear();
        assert!(reg.is_empty());
    }

    #[test]
    fn rename_to_self_is_a_noop() {
        let reg = TempRegistry::new();
        reg.put("cte", part_with(4));
        reg.rename("cte", "CTE").unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("cte").unwrap().total_rows(), 4);
        assert!(reg.rename("ghost", "ghost").is_err());
    }

    #[test]
    fn spilled_entry_rehydrates_transparently() {
        let reg = spill_registry();
        reg.put("cte", part_with(12));
        assert!(reg.spill_entry("cte").unwrap());
        assert_eq!(reg.spilled_count(), 1);
        // The accountant no longer counts the spilled bytes as resident.
        let env = reg.spill_env().unwrap();
        assert_eq!(env.accountant.resident_bytes(), 0);
        // get() rehydrates: same rows, resident again, file gone.
        let back = reg.get("cte").unwrap();
        assert_eq!(back.total_rows(), 12);
        assert_eq!(reg.spilled_count(), 0);
        assert!(env.accountant.resident_bytes() > 0);
    }

    #[test]
    fn spilling_twice_and_missing_names_are_benign() {
        let reg = spill_registry();
        reg.put("cte", part_with(3));
        assert!(reg.spill_entry("cte").unwrap());
        assert!(!reg.spill_entry("cte").unwrap(), "already spilled");
        assert!(!reg.spill_entry("ghost").unwrap(), "missing name");
    }

    #[test]
    fn rename_moves_a_spilled_slot_without_io() {
        let reg = spill_registry();
        reg.put("working", part_with(7));
        reg.put("cte", part_with(2));
        assert!(reg.spill_entry("working").unwrap());
        reg.rename("working", "cte").unwrap();
        assert!(!reg.contains("working"));
        assert_eq!(reg.spilled_count(), 1);
        // Rehydrating the renamed entry yields the working table's rows.
        assert_eq!(reg.get("cte").unwrap().total_rows(), 7);
    }

    #[test]
    fn rename_over_a_spilled_target_deletes_its_file() {
        let reg = spill_registry();
        reg.put("a", part_with(1));
        reg.put("b", part_with(2));
        assert!(reg.spill_entry("b").unwrap());
        reg.rename("a", "b").unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.spilled_count(), 0);
        assert_eq!(reg.get("b").unwrap().total_rows(), 1);
    }

    #[test]
    fn clear_releases_spilled_regions() {
        let reg = spill_registry();
        reg.put("a", part_with(4));
        reg.put("b", part_with(4));
        assert!(reg.spill_entry("a").unwrap());
        reg.clear();
        assert!(reg.is_empty());
        let env = reg.spill_env().unwrap();
        assert_eq!(env.accountant.resident_bytes(), 0);
    }

    /// Regression test for reader-visible rename atomicity: concurrent
    /// `get("cte")` calls during a storm of working→cte renames must never
    /// observe a state where the name is unbound.
    #[test]
    fn rename_is_atomic_for_concurrent_readers() {
        let reg = Arc::new(TempRegistry::new());
        reg.put("cte", part_with(1));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                // Do-while: every reader performs at least one read even if
                // the writer storm finishes before this thread is scheduled
                // (a single-core box can run all 2 000 renames first).
                let mut reads = 0u64;
                loop {
                    assert!(
                        reg.get("cte").is_ok(),
                        "reader observed 'cte' unbound mid-rename"
                    );
                    reads += 1;
                    if stop.load(std::sync::atomic::Ordering::Acquire) {
                        break;
                    }
                }
                reads
            }));
        }
        for i in 0..2_000 {
            reg.put("working", part_with(i % 7 + 1));
            reg.rename("working", "cte").unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        assert_eq!(reg.len(), 1);
    }
}
