//! Per-process spill manifest: the durable index of on-disk state.
//!
//! Every spill/checkpoint file the [`SpillManager`](crate::SpillManager)
//! writes is recorded here together with the newest committed checkpoint
//! epoch per loop, so recovery can always answer two questions without
//! trusting file contents: *which files belong to a live process?* and
//! *what is the newest complete epoch?* The manifest itself is written
//! with the same write-to-temp → fsync → atomic-rename protocol as the
//! data files it describes, and is sealed with an [`xxh64`] checksum so a
//! torn manifest write is detected on load rather than silently trusted.
//!
//! The manifest is advisory for correctness — every data file carries its
//! own checksums and trailer — but authoritative for garbage collection:
//! [`gc_orphans`] removes `spinner_spill_*` / `spinner_manifest_*` /
//! `spinner_journal_*` files whose owning process is dead, so a crashed
//! process never leaks disk. Restart adoption (the engine's startup pass)
//! reads a dead pid's journal and checkpoints *into memory* before GC
//! runs, so adoption and GC compose without a protect-list.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use spinner_common::memory::MemoryMetrics;
use spinner_common::{Error, Result};

use crate::spill::xxh64;

/// First line of every manifest file: format name + version.
const HEADER_LINE: &str = "SPNMFT 1";

#[derive(Debug, Default)]
struct State {
    /// Live spill files owned by this process: file name → on-disk bytes.
    files: BTreeMap<String, u64>,
    /// Newest committed checkpoint epoch per loop key.
    epochs: BTreeMap<String, u64>,
}

/// A parsed, seal-verified manifest (see [`Manifest::load`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestSnapshot {
    /// Live spill files at save time: file name → on-disk bytes.
    pub files: BTreeMap<String, u64>,
    /// Newest committed checkpoint epoch per loop key.
    pub epochs: BTreeMap<String, u64>,
}

/// Tracks this process's on-disk spill state in a sealed, atomically
/// replaced manifest file under the spill directory.
///
/// All methods are thread-safe; saves are best-effort (a manifest write
/// failure never fails the query — data files self-verify) but crash
/// consistent (readers only ever observe a complete, sealed manifest).
#[derive(Debug)]
pub struct Manifest {
    path: PathBuf,
    metrics: Arc<MemoryMetrics>,
    state: Mutex<State>,
}

impl Manifest {
    /// Manifest for one spill manager, stored as
    /// `spinner_manifest_{pid}_{tag}.mft` under `dir`.
    pub fn new(dir: &Path, tag: u64, metrics: Arc<MemoryMetrics>) -> Self {
        let path = dir.join(format!("spinner_manifest_{}_{tag}.mft", std::process::id()));
        Manifest {
            path,
            metrics,
            state: Mutex::new(State::default()),
        }
    }

    /// Path of the manifest file (observability/tests).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Record a freshly persisted spill file.
    pub fn record_file(&self, file: &Path, bytes: u64, durable: bool) {
        let name = file_name(file);
        let mut state = self.state.lock().expect("manifest lock");
        state.files.insert(name, bytes);
        self.save(&state, durable);
    }

    /// Remove a spill file's entry (the file was deleted). The rewritten
    /// manifest replaces the old one atomically, so a crash between the
    /// file deletion and this update leaves at worst a stale entry for a
    /// missing file — never a missing entry for a live file.
    pub fn remove_file(&self, file: &Path) {
        let name = file_name(file);
        let mut state = self.state.lock().expect("manifest lock");
        if state.files.remove(&name).is_some() {
            self.save(&state, false);
        }
    }

    /// Commit the next checkpoint epoch for `key` and return it. The
    /// epoch only counts as committed once the sealed manifest naming it
    /// has been atomically renamed into place.
    pub fn commit_epoch(&self, key: &str, durable: bool) -> u64 {
        let mut state = self.state.lock().expect("manifest lock");
        let epoch = state.epochs.get(key).copied().unwrap_or(0) + 1;
        state.epochs.insert(key.to_string(), epoch);
        self.save(&state, durable);
        epoch
    }

    /// The newest committed epoch for `key`, if any.
    pub fn newest_epoch(&self, key: &str) -> Option<u64> {
        self.state
            .lock()
            .expect("manifest lock")
            .epochs
            .get(key)
            .copied()
    }

    /// Number of live file entries (observability/tests).
    pub fn file_count(&self) -> usize {
        self.state.lock().expect("manifest lock").files.len()
    }

    fn render(state: &State) -> String {
        let mut out = String::from(HEADER_LINE);
        out.push('\n');
        for (name, bytes) in &state.files {
            out.push_str(&format!("file {bytes} {name}\n"));
        }
        for (key, epoch) in &state.epochs {
            out.push_str(&format!("epoch {epoch} {key}\n"));
        }
        let seal = xxh64(out.as_bytes());
        out.push_str(&format!("seal {seal:016x}\n"));
        out
    }

    fn save(&self, state: &State, durable: bool) {
        let body = Self::render(state);
        let tmp = self.path.with_extension("mft.tmp");
        if std::fs::write(&tmp, body.as_bytes()).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if durable {
            if std::fs::File::open(&tmp)
                .and_then(|f| f.sync_all())
                .is_err()
            {
                let _ = std::fs::remove_file(&tmp);
                return;
            }
            self.metrics.note_fsync();
        }
        if std::fs::rename(&tmp, &self.path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if durable && parent_dir_sync(&self.path).is_ok() {
            self.metrics.note_fsync();
        }
    }

    /// Parse and seal-verify a manifest file. A short, torn or mutated
    /// manifest surfaces as a typed [`Error::StorageCorrupt`].
    pub fn load(path: &Path) -> Result<ManifestSnapshot> {
        let corrupt = |what: &str| Error::StorageCorrupt {
            region: "manifest".to_string(),
            message: format!("{what} in {}", path.display()),
        };
        let text =
            std::fs::read_to_string(path).map_err(|e| corrupt(&format!("unreadable: {e}")))?;
        let sealed_at = text
            .rfind("seal ")
            .ok_or_else(|| corrupt("missing seal line (torn write)"))?;
        let (body, seal_line) = text.split_at(sealed_at);
        let stored = seal_line
            .strip_prefix("seal ")
            .and_then(|s| u64::from_str_radix(s.trim(), 16).ok())
            .ok_or_else(|| corrupt("malformed seal line"))?;
        if xxh64(body.as_bytes()) != stored {
            return Err(corrupt("seal checksum mismatch"));
        }
        let mut lines = body.lines();
        if lines.next() != Some(HEADER_LINE) {
            return Err(corrupt("bad header"));
        }
        let mut files = BTreeMap::new();
        let mut epochs = BTreeMap::new();
        for line in lines {
            let mut parts = line.splitn(3, ' ');
            match (parts.next(), parts.next(), parts.next()) {
                (Some("file"), Some(bytes), Some(name)) => {
                    let bytes = bytes.parse().map_err(|_| corrupt("malformed file line"))?;
                    files.insert(name.to_string(), bytes);
                }
                (Some("epoch"), Some(epoch), Some(key)) => {
                    let epoch = epoch.parse().map_err(|_| corrupt("malformed epoch line"))?;
                    epochs.insert(key.to_string(), epoch);
                }
                _ => return Err(corrupt("unrecognized line")),
            }
        }
        Ok(ManifestSnapshot { files, epochs })
    }
}

impl Drop for Manifest {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
        let _ = std::fs::remove_file(self.path.with_extension("mft.tmp"));
    }
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string_lossy().into_owned())
}

/// Fsync the parent directory of `path` so a just-renamed file survives a
/// crash. Directory fds are not openable on every platform; callers treat
/// a failure as "no directory sync happened", not as a write error.
pub(crate) fn parent_dir_sync(path: &Path) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::File::open(dir)?.sync_all()
}

/// Remove spill/manifest files under `dir` left behind by dead processes.
/// Returns the number of files removed. Files owned by live processes
/// (including this one) are never touched; on platforms without `/proc`
/// liveness probing, nothing is removed.
pub fn gc_orphans(dir: &Path) -> u64 {
    if !Path::new("/proc/self").exists() {
        return 0;
    }
    let me = std::process::id();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(pid) = owner_pid(name) else { continue };
        if pid == me || Path::new(&format!("/proc/{pid}")).exists() {
            continue;
        }
        if std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// Parse the owning pid out of a `spinner_spill_{pid}_…` /
/// `spinner_manifest_{pid}_…` / `spinner_journal_{pid}_…` file name
/// (including their `.tmp` forms).
fn owner_pid(name: &str) -> Option<u32> {
    let rest = name
        .strip_prefix("spinner_spill_")
        .or_else(|| name.strip_prefix("spinner_manifest_"))
        .or_else(|| name.strip_prefix("spinner_journal_"))?;
    rest.split('_').next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest_in(dir: &Path) -> Manifest {
        Manifest::new(dir, 0, Arc::new(MemoryMetrics::new()))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spinner_mft_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn record_commit_and_load_round_trip() {
        let dir = temp_dir("rt");
        let m = manifest_in(&dir);
        m.record_file(&dir.join("spinner_spill_1_0_0_x.spn"), 64, true);
        m.record_file(&dir.join("spinner_spill_1_0_1_y.spn"), 128, true);
        assert_eq!(m.commit_epoch("checkpoint:pr", true), 1);
        assert_eq!(m.commit_epoch("checkpoint:pr", true), 2);
        assert_eq!(m.newest_epoch("checkpoint:pr"), Some(2));
        assert_eq!(m.newest_epoch("checkpoint:cc"), None);
        let snap = Manifest::load(m.path()).unwrap();
        assert_eq!(snap.files.len(), 2);
        assert_eq!(snap.files["spinner_spill_1_0_1_y.spn"], 128);
        assert_eq!(snap.epochs["checkpoint:pr"], 2);
        m.remove_file(&dir.join("spinner_spill_1_0_0_x.spn"));
        assert_eq!(Manifest::load(m.path()).unwrap().files.len(), 1);
        let path = m.path().to_path_buf();
        drop(m);
        assert!(!path.exists(), "drop must delete the manifest");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_manifest_is_storage_corrupt() {
        let dir = temp_dir("tamper");
        let m = manifest_in(&dir);
        m.record_file(&dir.join("spinner_spill_1_0_0_x.spn"), 64, false);
        let text = std::fs::read_to_string(m.path()).unwrap();
        // Flip one digit of the recorded size: the seal must catch it.
        std::fs::write(m.path(), text.replace("file 64", "file 65")).unwrap();
        assert!(matches!(
            Manifest::load(m.path()),
            Err(Error::StorageCorrupt { .. })
        ));
        // Truncation (torn write) is caught too.
        std::fs::write(m.path(), &text.as_bytes()[..text.len() / 2]).unwrap();
        assert!(matches!(
            Manifest::load(m.path()),
            Err(Error::StorageCorrupt { .. })
        ));
        drop(m);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_removes_dead_pid_files_and_keeps_live_ones() {
        let dir = temp_dir("gc");
        let dead = dir.join("spinner_spill_999999999_0_0_x.spn");
        let dead_mft = dir.join("spinner_manifest_999999999_0.mft");
        let live = dir.join(format!("spinner_spill_{}_0_0_x.spn", std::process::id()));
        let unrelated = dir.join("keep.txt");
        for p in [&dead, &dead_mft, &live, &unrelated] {
            std::fs::write(p, b"x").unwrap();
        }
        let removed = gc_orphans(&dir);
        if Path::new("/proc/self").exists() {
            assert_eq!(removed, 2);
            assert!(!dead.exists() && !dead_mft.exists());
        }
        assert!(live.exists(), "files of the current process are kept");
        assert!(unrelated.exists(), "non-spinner files are never touched");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
