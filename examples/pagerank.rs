//! PageRank over a synthetic DBLP-shaped graph, exactly as the paper's
//! Figure 2 expresses it — an iterative CTE with aggregation, which ANSI
//! recursive CTEs cannot express.
//!
//! ```sh
//! cargo run --release --example pagerank [scale]
//! ```

use spinner_datagen::{load_normalized_edges_into, DatasetPreset};
use spinner_engine::{Database, Result};
use spinner_procedural::pagerank;

fn main() -> Result<()> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.002);
    let db = Database::default();
    let spec = DatasetPreset::Dblp.spec(scale);
    // Transition-probability weights (1/out-degree) keep ranks bounded.
    let edges = load_normalized_edges_into(&db, "edges", &spec)?;
    println!(
        "Generated dblp-like graph: {} nodes, {edges} edges (scale {scale})",
        spec.nodes
    );

    let workload = pagerank(10, false);
    let started = std::time::Instant::now();
    let all = db.query(&workload.cte)?;
    let elapsed = started.elapsed();

    // Show the ten most important nodes.
    let top = db.query(
        "WITH ITERATIVE PageRank (node, rank, delta) AS (
             SELECT src, 0, 0.15
             FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
         ITERATE
             SELECT PageRank.node,
                    PageRank.rank + PageRank.delta,
                    0.85 * SUM(IncomingRank.delta * IncomingEdges.weight)
             FROM PageRank
                 LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst
                 LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src
             GROUP BY PageRank.node, PageRank.rank + PageRank.delta
         UNTIL 10 ITERATIONS)
         SELECT node, rank FROM PageRank ORDER BY rank DESC, node LIMIT 10",
    )?;
    println!("Top-10 nodes by rank:\n{}", top.to_table());
    println!(
        "Ranked {} nodes in {elapsed:.2?} ({})",
        all.len(),
        db.take_stats()
    );
    Ok(())
}
