//! Connected components by iterative min-label propagation — a workload
//! the paper's recursive-CTE comparison point *cannot* express (it needs
//! MIN aggregation in the loop and update semantics), and a natural fit
//! for the DELTA termination class: iterate until no label changes.
//!
//! ```sh
//! cargo run --release --example connected_components [nodes] [components]
//! ```

use spinner_datagen::GraphSpec;
use spinner_engine::{DataType, Database, Field, Result, Schema};
use spinner_procedural::connected_components;

fn main() -> Result<()> {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let components: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let db = Database::default();
    let spec = GraphSpec {
        nodes,
        edges: nodes * 3,
        seed: 2024,
        max_weight: 10,
    };
    let rows = spec.generate_symmetric_components(components);
    let schema = Schema::new(vec![
        Field::new("src", DataType::Int),
        Field::new("dst", DataType::Int),
        Field::new("weight", DataType::Float),
    ]);
    let edge_count = db.create_table_from_rows("edges", schema, rows, None, Some(1))?;
    println!("Symmetric graph: {nodes} nodes, {edge_count} edge rows, {components} components");

    let workload = connected_components(None); // DELTA < 1: run to convergence
    let started = std::time::Instant::now();
    let labels = db.query(&workload.cte)?;
    let elapsed = started.elapsed();
    let stats = db.take_stats();

    let summary = db.query(
        "WITH ITERATIVE cc (node, label) AS (
             SELECT src, src FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
         ITERATE
             SELECT cc.node, LEAST(cc.label, COALESCE(MIN(nbr.label), cc.label))
             FROM cc
               LEFT JOIN edges AS e ON cc.node = e.dst
               LEFT JOIN cc AS nbr ON nbr.node = e.src
             GROUP BY cc.node, cc.label
         UNTIL DELTA < 1)
         SELECT label, COUNT(*) AS size FROM cc GROUP BY label ORDER BY size DESC",
    )?;
    println!("Components found:\n{}", summary.to_table());
    println!(
        "Labelled {} nodes in {elapsed:.2?}; converged after {} iterations",
        labels.len(),
        stats.iterations
    );
    assert_eq!(
        summary.len(),
        components,
        "label propagation found every component"
    );
    Ok(())
}
