//! Single-source shortest path with a *delta* termination condition: the
//! loop stops when an iteration changes no row — i.e. when the distances
//! have converged.
//!
//! One change versus the paper's Figure 7: the relaxation reads each
//! in-neighbour's best-known distance `LEAST(distance, delta)` instead of
//! its last `delta`. The paper's formulation is correct under its fixed
//! `UNTIL 10 ITERATIONS` bound, but its `delta` column keeps circulating
//! values around graph cycles forever, so a DELTA termination would never
//! fire; the best-known-distance variant is monotone and converges.
//!
//! ```sh
//! cargo run --release --example shortest_path [scale] [source]
//! ```

use spinner_datagen::{load_edges_into, DatasetPreset};
use spinner_engine::{Database, Result};

fn main() -> Result<()> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.002);
    let source: i64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let db = Database::default();
    let spec = DatasetPreset::GoogleWeb.spec(scale);
    let edges = load_edges_into(&db, "edges", &spec)?;
    println!(
        "Generated google-web-like graph: {} nodes, {edges} edges",
        spec.nodes
    );

    let sql = format!(
        "WITH ITERATIVE sssp (node, distance, delta) AS (
             SELECT src, 9999999, CASE WHEN src = {source} THEN 0 ELSE 9999999 END
             FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
         ITERATE
             SELECT sssp.node,
                    LEAST(sssp.distance, sssp.delta),
                    COALESCE(MIN(LEAST(IncomingDistance.distance, IncomingDistance.delta)
                                 + IncomingEdges.weight), 9999999)
             FROM sssp
                 LEFT JOIN edges AS IncomingEdges ON sssp.node = IncomingEdges.dst
                 LEFT JOIN sssp AS IncomingDistance
                     ON IncomingDistance.node = IncomingEdges.src
             WHERE LEAST(IncomingDistance.distance, IncomingDistance.delta) != 9999999
             GROUP BY sssp.node, LEAST(sssp.distance, sssp.delta)
         UNTIL DELTA < 1)
         SELECT node, distance FROM sssp
         WHERE distance < 9999999 ORDER BY distance, node LIMIT 15"
    );
    let started = std::time::Instant::now();
    let nearest = db.query(&sql)?;
    let stats = db.take_stats();
    println!(
        "Nearest nodes to {source} (converged after {} iterations, {:.2?}):\n{}",
        stats.iterations,
        started.elapsed(),
        nearest.to_table()
    );
    Ok(())
}
