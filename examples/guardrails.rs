//! Query guardrails demo: cancellation, timeouts, resource budgets,
//! panic isolation and deterministic fault injection, all driven
//! through the public `spinner_engine` API.
//!
//! ```sh
//! cargo run --release --example guardrails
//! ```
//!
//! Every scenario is expected to fail *cleanly* — a typed error, an
//! empty temp-result registry, and a `Database` that keeps answering
//! queries. The example exits non-zero if any expectation is broken.

use std::sync::Arc;
use std::time::Duration;

use spinner_engine::{
    Database, EngineConfig, Error, FaultConfig, FaultKind, FaultSite, QueryGuard,
};
use spinner_procedural::pagerank;

const CTE: &str = "WITH ITERATIVE t (k, v) AS (
     SELECT src, 0 FROM edges
 ITERATE SELECT k, v + 1 FROM t
 UNTIL 50 ITERATIONS)
 SELECT * FROM t";

fn db_with_edges(config: EngineConfig) -> Database {
    let db = Database::new(config).expect("demo config is valid");
    db.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
        .unwrap();
    db.execute("INSERT INTO edges VALUES (1,2,1.0), (2,3,1.0), (3,4,1.0), (1,3,5.0), (4,1,1.0)")
        .unwrap();
    db
}

fn check_recovered(db: &Database) {
    assert_eq!(db.temp_result_count(), 0, "temp registry must be empty");
    db.query("SELECT COUNT(*) FROM edges")
        .expect("database must stay usable after a guard trip");
}

fn main() {
    // 1. Wall-clock deadline. A seeded always-fire 10 ms delay per loop
    //    iteration makes a 50 ms deadline trip mid-PageRank.
    let db = db_with_edges(EngineConfig::default().with_fault(FaultConfig::seeded(
        FaultSite::LoopIteration,
        FaultKind::DelayMs(10),
        1,
        1_000_000,
    )));
    let guard = QueryGuard::unlimited().with_timeout_ms(50);
    match db.query_with_guard(&pagerank(200, false).cte, &guard) {
        Err(Error::Timeout {
            elapsed_ms,
            limit_ms,
        }) => println!("deadline:     Timeout after {elapsed_ms} ms (limit {limit_ms} ms)"),
        other => panic!("expected Timeout, got {other:?}"),
    }
    let iterations = db.take_stats().iterations;
    assert!(iterations < 200, "deadline must stop the loop early");
    check_recovered(&db);
    println!("              stopped after {iterations}/200 iterations, registry clean");

    // 2. Cross-thread cancellation via the shared guard token.
    let db = db_with_edges(EngineConfig::default().with_fault(FaultConfig::seeded(
        FaultSite::LoopIteration,
        FaultKind::DelayMs(5),
        2,
        1_000_000,
    )));
    let guard = Arc::new(QueryGuard::unlimited());
    let canceller = {
        let guard = Arc::clone(&guard);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            guard.cancel();
        })
    };
    match db.query_with_guard(CTE, &guard) {
        Err(Error::Cancelled) => println!("cancel:       Cancelled from another thread"),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    canceller.join().unwrap();
    check_recovered(&db);

    // 3. Resource budget: cap materialized rows far below what the
    //    iteration needs; the error reports actual usage.
    let db = db_with_edges(EngineConfig::default());
    let guard = QueryGuard::unlimited().with_max_rows_materialized(10);
    match db.query_with_guard(CTE, &guard) {
        Err(Error::ResourceExhausted {
            resource,
            used,
            limit,
        }) => {
            assert!(used >= limit);
            println!("budget:       ResourceExhausted({resource}: used {used}, limit {limit})");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    check_recovered(&db);

    // 4. Panic isolation: a worker panic in a parallel partition run is
    //    caught, typed, and leaves the process (and Database) alive.
    let mut db = db_with_edges(EngineConfig::default().with_parallel_partitions(true));
    db.set_config(
        EngineConfig::default()
            .with_parallel_partitions(true)
            .with_fault(FaultConfig::panic_nth(FaultSite::Worker, 1)),
    )
    .unwrap();
    match db.query(CTE) {
        Err(Error::WorkerPanicked { partition, message }) => {
            println!("panic:        WorkerPanicked(partition {partition}: {message:?})");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    check_recovered(&db);
    db.query(CTE).expect("one-shot fault: retry must succeed");
    println!("              process alive, retry succeeded");

    // 5. Deterministic fault injection: fail the first materialize step,
    //    then retry — the one-shot trigger has been consumed.
    let mut db = db_with_edges(EngineConfig::default());
    db.set_config(
        EngineConfig::default().with_fault(FaultConfig::fail_nth(FaultSite::Materialize, 1)),
    )
    .unwrap();
    match db.query(CTE) {
        Err(Error::FaultInjected { site }) => println!("chaos:        FaultInjected(site {site})"),
        other => panic!("expected FaultInjected, got {other:?}"),
    }
    check_recovered(&db);
    db.query(CTE).expect("retry after one-shot fault");
    println!("              registry clean, retry succeeded");

    println!("\nall guardrails held.");
}
