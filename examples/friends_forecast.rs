//! Forecast-Friends (paper Figure 6), demonstrating the restricted
//! predicate push-down of §V-B: the final query keeps only 1-in-X nodes,
//! and because the iterative part processes rows independently, the engine
//! pushes that predicate into the non-iterative part — every iteration then
//! touches X-times fewer rows.
//!
//! The example runs the same query with the optimization on and off and
//! prints both timings plus the materialized-row counters.
//!
//! ```sh
//! cargo run --release --example friends_forecast [scale] [mod_x]
//! ```

use spinner_datagen::{load_edges_into, DatasetPreset};
use spinner_engine::{Database, EngineConfig, Result};
use spinner_procedural::ff;

fn main() -> Result<()> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    let mod_x: i64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let spec = DatasetPreset::Dblp.spec(scale);
    let workload = ff(25, mod_x);

    let mut results = Vec::new();
    for (label, config) in [
        ("push-down ON ", EngineConfig::default()),
        (
            "push-down OFF",
            EngineConfig::default().with_predicate_pushdown(false),
        ),
    ] {
        let db = Database::new(config)?;
        load_edges_into(&db, "edges", &spec)?;
        let started = std::time::Instant::now();
        let batch = db.query(&workload.cte)?;
        let elapsed = started.elapsed();
        let stats = db.take_stats();
        println!(
            "{label}: {elapsed:>10.2?}  rows materialized: {:>9}",
            stats.rows_materialized
        );
        results.push(batch);
    }
    assert_eq!(
        results[0].rows(),
        results[1].rows(),
        "the optimization must not change results"
    );
    println!(
        "\nTop forecasted nodes (1 in {mod_x} sampled):\n{}",
        results[0].to_table()
    );
    Ok(())
}
