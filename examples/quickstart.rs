//! Quickstart: create a table, run a regular query, then an iterative CTE.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use spinner_engine::{Database, Result};

fn main() -> Result<()> {
    let db = Database::default();

    // Plain SQL works as expected.
    db.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")?;
    db.execute(
        "INSERT INTO edges VALUES
             (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (4, 1, 1.0), (1, 3, 5.0)",
    )?;
    let degree =
        db.query("SELECT src, COUNT(dst) AS out_degree FROM edges GROUP BY src ORDER BY src")?;
    println!("Out-degrees:\n{}", degree.to_table());

    // The DBSpinner extension: WITH ITERATIVE ... ITERATE ... UNTIL ...
    // Here: repeatedly halve a per-node value until it converges below 1.
    let sql = "WITH ITERATIVE halving (node, value) AS (
                   SELECT src, CAST(src * 100 AS FLOAT)
                   FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
               ITERATE
                   SELECT node, CASE WHEN value >= 1.0 THEN value / 2 ELSE value END
                   FROM halving
               UNTIL DELTA < 1)
               SELECT node, value FROM halving ORDER BY node";
    println!("EXPLAIN (note the loop and rename operators):");
    println!("{}", db.explain(sql)?);
    let result = db.query(sql)?;
    println!("Converged values:\n{}", result.to_table());

    // EXPLAIN ANALYZE executes the query and annotates the same step
    // program with actual row counts, per-step timings and a
    // per-iteration convergence table (delta / updated / working rows).
    let profile = db.explain_analyze(sql)?;
    println!("EXPLAIN ANALYZE:\n{}", profile.render());
    // The same data is available structurally — e.g. how many iterations
    // the loop ran — and as JSON for external tooling.
    let iterations = profile.loops()[0].iterations.len();
    println!("loop converged after {iterations} iterations");
    println!("profile JSON is {} bytes", profile.to_json().len());

    // Execution statistics: how much data moved between the virtual MPP
    // partitions, how many rename operations replaced full copies.
    println!("stats: {}", db.take_stats());
    Ok(())
}
