//! Quickstart: create a table, run a regular query, then an iterative CTE.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use spinner_engine::{Database, Result};

fn main() -> Result<()> {
    let db = Database::default();

    // Plain SQL works as expected.
    db.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")?;
    db.execute(
        "INSERT INTO edges VALUES
             (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (4, 1, 1.0), (1, 3, 5.0)",
    )?;
    let degree =
        db.query("SELECT src, COUNT(dst) AS out_degree FROM edges GROUP BY src ORDER BY src")?;
    println!("Out-degrees:\n{}", degree.to_table());

    // The DBSpinner extension: WITH ITERATIVE ... ITERATE ... UNTIL ...
    // Here: repeatedly halve a per-node value until it converges below 1.
    let sql = "WITH ITERATIVE halving (node, value) AS (
                   SELECT src, CAST(src * 100 AS FLOAT)
                   FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
               ITERATE
                   SELECT node, CASE WHEN value >= 1.0 THEN value / 2 ELSE value END
                   FROM halving
               UNTIL DELTA < 1)
               SELECT node, value FROM halving ORDER BY node";
    println!("EXPLAIN (note the loop and rename operators):");
    println!("{}", db.explain(sql)?);
    let result = db.query(sql)?;
    println!("Converged values:\n{}", result.to_table());

    // Execution statistics: how much data moved between the virtual MPP
    // partitions, how many rename operations replaced full copies.
    println!("stats: {}", db.take_stats());
    Ok(())
}
